"""Paired significance testing between two recommenders.

The paper reports averages over five runs and asserts the error is
negligible; this module provides the machinery to make such claims
checkable: per-user metric extraction plus a paired bootstrap over
held-out users.

    per_a = per_user_metric(model_a, heldout, "ndcg@10")
    per_b = per_user_metric(model_b, heldout, "ndcg@10")
    report = paired_bootstrap(per_a, per_b, rng)
    if report.significant:
        ...
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.splits import FoldInUser
from .metrics import ndcg_at_n, precision_at_n, rank_items, recall_at_n

__all__ = ["per_user_metric", "BootstrapReport", "paired_bootstrap"]

_METRIC_FUNCTIONS = {
    "ndcg": ndcg_at_n,
    "recall": recall_at_n,
    "precision": precision_at_n,
}


def _parse_metric(name: str):
    try:
        metric, cutoff = name.split("@")
        return _METRIC_FUNCTIONS[metric], int(cutoff)
    except (ValueError, KeyError):
        raise ValueError(
            f"metric must look like 'ndcg@10' / 'recall@20' / "
            f"'precision@10', got {name!r}"
        ) from None


def per_user_metric(
    recommender,
    heldout: list[FoldInUser],
    metric: str,
    exclude_fold_in: bool = True,
    batch_size: int = 64,
) -> np.ndarray:
    """One metric value per held-out user (same protocol as the
    evaluator, but without averaging)."""
    function, cutoff = _parse_metric(metric)
    values = np.empty(len(heldout))
    for start in range(0, len(heldout), batch_size):
        chunk = heldout[start:start + batch_size]
        scores = np.asarray(
            recommender.score_batch([user.fold_in for user in chunk])
        )
        for offset, (user, user_scores) in enumerate(zip(chunk, scores)):
            ranked = rank_items(
                user_scores,
                cutoff,
                exclude=user.fold_in if exclude_fold_in else None,
            )
            values[start + offset] = function(ranked, user.targets, cutoff)
    return values


@dataclass
class BootstrapReport:
    """Result of a paired bootstrap comparison (A minus B)."""

    mean_difference: float
    ci_low: float
    ci_high: float
    p_value: float
    num_users: int
    num_resamples: int

    @property
    def significant(self) -> bool:
        """True when the (two-sided) confidence interval excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0

    def __repr__(self) -> str:
        return (
            f"BootstrapReport(diff={self.mean_difference:+.4f} "
            f"[{self.ci_low:+.4f}, {self.ci_high:+.4f}], "
            f"p={self.p_value:.3f}, users={self.num_users})"
        )


def paired_bootstrap(
    values_a: np.ndarray,
    values_b: np.ndarray,
    rng: np.random.Generator,
    num_resamples: int = 2000,
    confidence: float = 0.95,
) -> BootstrapReport:
    """Paired bootstrap over users for the difference A − B.

    Args:
        values_a, values_b: per-user metric values, same users in the
            same order (from :func:`per_user_metric`).
        rng: resampling generator.
        num_resamples: bootstrap iterations.
        confidence: two-sided confidence level for the interval.

    Returns:
        A :class:`BootstrapReport` with the mean difference, percentile
        confidence interval, and a two-sided sign-flip p-value.
    """
    values_a = np.asarray(values_a, dtype=np.float64)
    values_b = np.asarray(values_b, dtype=np.float64)
    if values_a.shape != values_b.shape or values_a.ndim != 1:
        raise ValueError("inputs must be equal-length 1-D arrays")
    if len(values_a) < 2:
        raise ValueError("need at least two paired users")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    differences = values_a - values_b
    n = len(differences)
    resampled = np.empty(num_resamples)
    for i in range(num_resamples):
        sample = differences[rng.integers(0, n, size=n)]
        resampled[i] = sample.mean()
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(resampled, [alpha, 1.0 - alpha])
    observed = differences.mean()
    # Two-sided p: how often a bootstrap mean falls on the far side of 0.
    tail = min(
        (resampled <= 0).mean(), (resampled >= 0).mean()
    )
    return BootstrapReport(
        mean_difference=float(observed),
        ci_low=float(low),
        ci_high=float(high),
        p_value=float(min(1.0, 2.0 * tail)),
        num_users=n,
        num_resamples=num_resamples,
    )
