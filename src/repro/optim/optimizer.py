"""Optimizer base class and gradient utilities."""

from __future__ import annotations

import numpy as np

from ..nn.module import Parameter

__all__ = ["Optimizer", "clip_grad_norm"]


class Optimizer:
    """Base class: holds parameters and defines the step/zero protocol."""

    def __init__(self, parameters: list[Parameter]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale all gradients so their joint L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for divergence diagnostics).
    """
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        total += float(np.sum(grad * grad))
    norm = float(np.sqrt(total))
    if norm > max_norm > 0:
        scale = max_norm / (norm + 1e-12)
        for grad in grads:
            grad *= scale
    return norm
