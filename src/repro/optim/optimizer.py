"""Optimizer base class and gradient utilities."""

from __future__ import annotations

import numpy as np

from ..nn.module import Parameter

__all__ = ["Optimizer", "clip_grad_norm"]


class Optimizer:
    """Base class: holds parameters and defines the step/zero protocol."""

    def __init__(self, parameters: list[Parameter]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Persistence (full-state training checkpoints)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot of the optimizer's internal state.

        The base optimizer is stateless; subclasses with buffers (Adam
        moments, SGD velocity) override both methods.  List-valued
        entries must be lists of arrays aligned with ``parameters``.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        if state:
            raise ValueError(
                f"{type(self).__name__} is stateless but received state "
                f"keys {sorted(state)}"
            )

    def _load_buffers(
        self, buffers: list[np.ndarray], arrays: list[np.ndarray], name: str
    ) -> None:
        """Copy saved arrays into existing buffers (keeps dtype/sharing)."""
        if len(arrays) != len(buffers):
            raise ValueError(
                f"{name}: expected {len(buffers)} buffers, got "
                f"{len(arrays)} (was the checkpoint written for a "
                "different parameter list?)"
            )
        for buffer, array in zip(buffers, arrays):
            array = np.asarray(array)
            if array.shape != buffer.shape:
                raise ValueError(
                    f"{name}: shape mismatch {array.shape} vs "
                    f"{buffer.shape}"
                )
            buffer[...] = array


def clip_grad_norm(
    parameters: list[Parameter],
    max_norm: float,
    error_if_nonfinite: bool = False,
) -> float:
    """Scale all gradients so their joint L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for divergence diagnostics).
    The squared norm is accumulated in float64 regardless of the
    gradients' dtype, so float32 gradients cannot overflow the
    accumulation.  A non-finite norm (inf/NaN gradients) is never
    silently ignored: the gradients are left unscaled and the non-finite
    norm is returned — or raised when ``error_if_nonfinite`` is set —
    so callers can surface the divergence instead of training on.
    """
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        flat = np.asarray(grad, dtype=np.float64).ravel()
        total += float(np.dot(flat, flat))
    norm = float(np.sqrt(total))
    if not np.isfinite(norm):
        if error_if_nonfinite:
            raise RuntimeError(
                f"gradient norm is non-finite ({norm}); inspect the "
                "gradients or lower the learning rate"
            )
        return norm
    if norm > max_norm > 0:
        scale = max_norm / (norm + 1e-12)
        for grad in grads:
            grad *= scale
    return norm
