"""Optimizers: Adam (the paper's choice), SGD, clipping, lr schedules."""

from .adam import Adam
from .optimizer import Optimizer, clip_grad_norm
from .schedule import LinearWarmup, StepDecay
from .sgd import SGD

__all__ = [
    "Adam",
    "LinearWarmup",
    "Optimizer",
    "SGD",
    "StepDecay",
    "clip_grad_norm",
]
