"""Learning-rate schedules (step-wise decay and linear warmup)."""

from __future__ import annotations

from .optimizer import Optimizer

__all__ = ["StepDecay", "LinearWarmup"]


class StepDecay:
    """Multiply the optimizer's lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int,
                 gamma: float = 0.5):
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self._epoch += 1
        decays = self._epoch // self.step_size
        self.optimizer.lr = self._base_lr * (self.gamma**decays)
        return self.optimizer.lr


class LinearWarmup:
    """Ramp the lr linearly from 0 to its base value over ``warmup_steps``."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int):
        if warmup_steps < 1:
            raise ValueError("warmup_steps must be >= 1")
        self.optimizer = optimizer
        self.warmup_steps = warmup_steps
        self._base_lr = optimizer.lr
        self._step = 0

    def step(self) -> float:
        """Advance one optimizer step; returns the new learning rate."""
        self._step += 1
        fraction = min(1.0, self._step / self.warmup_steps)
        self.optimizer.lr = self._base_lr * fraction
        return self.optimizer.lr
