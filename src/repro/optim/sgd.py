"""Stochastic gradient descent with optional momentum and weight decay."""

from __future__ import annotations

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """``p -= lr * (grad + weight_decay * p)`` with classical momentum."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def state_dict(self) -> dict:
        """Momentum buffers (checkpoint/resume)."""
        return {"velocity": [buffer.copy() for buffer in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        if set(state) != {"velocity"}:
            raise ValueError(
                f"SGD state_dict must have key 'velocity', got "
                f"{sorted(state)}"
            )
        self._load_buffers(self._velocity, state["velocity"], "velocity")

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad
