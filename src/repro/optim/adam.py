"""Adam (Kingma & Ba, 2015) — the optimizer the paper trains VSAN with."""

from __future__ import annotations

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias-corrected first/second moments.

    Defaults match the paper's setup (lr=0.001) and the standard
    beta/epsilon choices.
    """

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first = [np.zeros_like(p.data) for p in self.parameters]
        self._second = [np.zeros_like(p.data) for p in self.parameters]

    def state_dict(self) -> dict:
        """Step count plus both moment buffers (checkpoint/resume).

        Restoring all three is what makes a resumed run identical to an
        uninterrupted one: a fresh Adam would re-run the bias-correction
        warm-up and forget the gradient running averages.
        """
        return {
            "step_count": self._step_count,
            "first": [moment.copy() for moment in self._first],
            "second": [moment.copy() for moment in self._second],
        }

    def load_state_dict(self, state: dict) -> None:
        expected = {"step_count", "first", "second"}
        if set(state) != expected:
            raise ValueError(
                f"Adam state_dict must have keys {sorted(expected)}, got "
                f"{sorted(state)}"
            )
        self._load_buffers(self._first, state["first"], "first moments")
        self._load_buffers(self._second, state["second"], "second moments")
        self._step_count = int(state["step_count"])

    def step(self) -> None:
        self._step_count += 1
        correction1 = 1.0 - self.beta1**self._step_count
        correction2 = 1.0 - self.beta2**self._step_count
        for param, first, second in zip(
            self.parameters, self._first, self._second
        ):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            first *= self.beta1
            first += (1.0 - self.beta1) * grad
            second *= self.beta2
            second += (1.0 - self.beta2) * grad * grad
            step_size = self.lr / correction1
            denom = np.sqrt(second / correction2) + self.eps
            param.data -= step_size * first / denom
