"""Command-line interface: train, evaluate, and recommend on CSV data.

Lets a user run the full pipeline on their own interaction logs without
writing Python::

    python -m repro generate-data --config beauty --out log.csv
    python -m repro train --data log.csv --model VSAN --out vsan.npz
    python -m repro evaluate --data log.csv --checkpoint vsan.npz
    python -m repro recommend --data log.csv --checkpoint vsan.npz --user 17
    python -m repro serve-smoke --requests 100

The CSV format is ``user,item,rating,timestamp`` (header optional);
preprocessing (ratings >= 4, 5-core) and the strong-generalization split
match the paper.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from .core import VSAN
from .data import (
    BEAUTY_LIKE,
    ML1M_LIKE,
    generate,
    prepare_corpus,
    read_interactions_csv,
    split_strong_generalization,
    split_weak_generalization,
    tiny_config,
    write_interactions_csv,
)
from .eval import evaluate_recommender, rank_items
from .models import SASRec, SVAE, Caser, GRU4Rec
from .nn import load_checkpoint, save_checkpoint
from .tensor.random import make_rng
from .train import Trainer, TrainerConfig

_MODEL_REGISTRY: dict[str, type] = {
    "VSAN": VSAN,
    "SASRec": SASRec,
    "GRU4Rec": GRU4Rec,
    "Caser": Caser,
    "SVAE": SVAE,
}

_DATA_CONFIGS = {
    "beauty": BEAUTY_LIKE,
    "ml1m": ML1M_LIKE,
    "tiny": tiny_config(),
}


def _load_split(args):
    log = read_interactions_csv(args.data)
    corpus = prepare_corpus(log, min_rating=args.min_rating,
                            core=args.core)
    if getattr(args, "protocol", "strong") == "weak":
        split = split_weak_generalization(corpus)
    else:
        split = split_strong_generalization(
            corpus, num_heldout=args.heldout, rng=make_rng(args.split_seed)
        )
    return corpus, split


def _build_model(name: str, num_items: int, args) -> object:
    cls = _MODEL_REGISTRY[name]
    kwargs = dict(
        num_items=num_items,
        max_length=args.max_length,
        dim=args.dim,
        dropout_rate=args.dropout,
        seed=args.seed,
    )
    if name == "VSAN":
        kwargs.update(h1=args.h1, h2=args.h2, k=args.k)
    if name == "SVAE":
        kwargs.update(k=args.k)
    return cls(**kwargs), kwargs


def cmd_generate_data(args) -> int:
    config = _DATA_CONFIGS[args.config]
    log = generate(config, seed=args.seed)
    write_interactions_csv(log, args.out)
    stats = log.statistics()
    print(f"wrote {args.out}: {stats.num_users} users, "
          f"{stats.num_items} items, {stats.num_interactions} interactions")
    return 0


def cmd_train(args) -> int:
    corpus, split = _load_split(args)
    model, config = _build_model(args.model, corpus.num_items, args)
    trainer_config = TrainerConfig(
        epochs=args.epochs,
        batch_size=args.batch_size,
        learning_rate=args.lr,
        patience=args.patience,
        eval_every=2,
        seed=args.seed,
        verbose=not args.quiet,
        num_workers=args.num_workers,
        trim_batches=not args.no_trim,
        bucket_by_length=args.bucket_by_length,
        bucket_epochs=args.bucket_epochs,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        keep_last=args.keep_last,
        compile=args.compile,
    )
    history = Trainer(trainer_config).fit(
        model, split.train, validation=split.validation,
        resume_from=args.resume,
    )
    save_checkpoint(model, args.out, config=config)
    result = evaluate_recommender(model, split.test)
    print(f"saved {args.out} (best epoch {history.best_epoch})")
    print("test:", result)
    return 0


def cmd_evaluate(args) -> int:
    _, split = _load_split(args)
    model = load_checkpoint(args.checkpoint, registry=_MODEL_REGISTRY)
    result = evaluate_recommender(
        model, split.test, cutoffs=tuple(args.cutoffs)
    )
    print(json.dumps(result.as_percentages(), indent=2, sort_keys=True))
    return 0


def cmd_recommend(args) -> int:
    corpus, _ = _load_split(args)
    model = load_checkpoint(args.checkpoint, registry=_MODEL_REGISTRY)
    try:
        row = corpus.user_ids.index(args.user)
    except ValueError:
        print(f"error: user {args.user} not in the corpus", file=sys.stderr)
        return 1
    history = corpus.sequences[row]
    scores = model.score(history)
    ranked = rank_items(scores, args.top, exclude=history)
    inverse = corpus.index_to_item
    originals = [inverse[int(item)] for item in ranked]
    print(f"user {args.user}: history of {len(history)} items")
    print(f"top-{args.top} recommendations (original item ids): {originals}")
    return 0


def cmd_serve_smoke(args) -> int:
    from .serve.smoke import (
        SmokeFailure,
        run_chaos_smoke,
        run_cluster_smoke,
        run_smoke,
    )

    try:
        if args.chaos:
            return run_chaos_smoke(
                requests=max(args.requests, 120),
                num_shards=args.shards,
                replicas_per_shard=args.replicas,
                faults=args.faults,
                seed=args.seed,
                verbose=not args.quiet,
            )
        if args.cluster:
            return run_cluster_smoke(
                requests=args.requests,
                num_shards=args.shards,
                seed=args.seed,
                verbose=not args.quiet,
            )
        return run_smoke(
            requests=args.requests,
            seed=args.seed,
            error_rate=args.error_rate,
            nan_rate=args.nan_rate,
            latency_rate=args.latency_rate,
            data=args.data,
            checkpoint=args.checkpoint,
            epochs=args.epochs,
            verbose=not args.quiet,
            engine=args.engine,
            retrieval=args.retrieval,
            compile=args.compile,
        )
    except SmokeFailure as failure:
        print(f"serve-smoke FAILED: {failure}", file=sys.stderr)
        return 1


def _add_data_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--data", required=True, help="interactions CSV")
    parser.add_argument("--min-rating", type=float, default=4.0)
    parser.add_argument("--core", type=int, default=5)
    parser.add_argument("--heldout", type=int, default=50,
                        help="held-out users per evaluation set")
    parser.add_argument("--split-seed", type=int, default=7)
    parser.add_argument(
        "--protocol", choices=("strong", "weak"), default="strong",
        help="strong = held-out users (the paper); weak = leave-one-out",
    )


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", choices=sorted(_MODEL_REGISTRY),
                        default="VSAN")
    parser.add_argument("--max-length", type=int, default=50)
    parser.add_argument("--dim", type=int, default=48)
    parser.add_argument("--dropout", type=float, default=0.2)
    parser.add_argument("--h1", type=int, default=1)
    parser.add_argument("--h2", type=int, default=1)
    parser.add_argument("--k", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    gen = commands.add_parser("generate-data",
                              help="write a synthetic CSV log")
    gen.add_argument("--config", choices=sorted(_DATA_CONFIGS),
                     default="tiny")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True)
    gen.set_defaults(func=cmd_generate_data)

    train = commands.add_parser("train", help="train a model on a CSV log")
    _add_data_arguments(train)
    _add_model_arguments(train)
    train.add_argument("--epochs", type=int, default=40)
    train.add_argument("--batch-size", type=int, default=128)
    train.add_argument("--lr", type=float, default=0.001)
    train.add_argument("--patience", type=int, default=5)
    train.add_argument("--quiet", action="store_true")
    train.add_argument(
        "--num-workers", type=int, default=1,
        help="gradient-worker processes (>1 = deterministic data-parallel "
             "training; the worker count is a runtime choice, checkpoints "
             "resume under any value)")
    train.add_argument(
        "--no-trim", action="store_true",
        help="disable per-batch column trimming (on by default for the "
             "attention models; trimming is loss-exact)")
    train.add_argument(
        "--bucket-by-length", action=argparse.BooleanOptionalAction,
        default=True,
        help="build minibatches from power-of-two length buckets so "
             "trimming pays on long-tail corpora (on by default; "
             "--no-bucket-by-length restores the uniform shuffle for "
             "step-for-step comparable runs)")
    train.add_argument(
        "--bucket-epochs", type=int, default=None,
        help="with --bucket-by-length: bucket only the first N epochs, "
             "then fall back to the uniform shuffle (cheap early "
             "epochs, unbiased batch mixing late)")
    train.add_argument("--out", required=True, help="checkpoint path (.npz)")
    train.add_argument(
        "--checkpoint-dir", default=None,
        help="write full-state training checkpoints here (enables "
             "crash-safe resume via --resume)",
    )
    train.add_argument("--checkpoint-every", type=int, default=1,
                       help="checkpoint cadence in epochs")
    train.add_argument(
        "--keep-last", type=int, default=None,
        help="retain only the newest N checkpoints (default: keep all)",
    )
    train.add_argument(
        "--compile", action=argparse.BooleanOptionalAction, default=True,
        help="trace-and-replay compiled training steps (on by default; "
             "--no-compile forces eager execution — the numbers are "
             "bitwise-identical either way)")
    train.add_argument(
        "--resume", default=None, metavar="CHECKPOINT",
        help="resume from a training checkpoint file, or from the newest "
             "checkpoint in a directory; restores weights, Adam moments, "
             "RNG streams, and the KL-annealing position",
    )
    train.set_defaults(func=cmd_train)

    evaluate = commands.add_parser("evaluate",
                                   help="evaluate a checkpoint")
    _add_data_arguments(evaluate)
    evaluate.add_argument("--checkpoint", required=True)
    evaluate.add_argument("--cutoffs", type=int, nargs="+",
                          default=[10, 20])
    evaluate.set_defaults(func=cmd_evaluate)

    recommend = commands.add_parser(
        "recommend", help="top-N recommendations for one user"
    )
    _add_data_arguments(recommend)
    recommend.add_argument("--checkpoint", required=True)
    recommend.add_argument("--user", type=int, required=True,
                           help="original user id from the CSV")
    recommend.add_argument("--top", type=int, default=10)
    recommend.set_defaults(func=cmd_recommend)

    smoke = commands.add_parser(
        "serve-smoke",
        help="fault-injection smoke test of the serving layer "
             "(repro.serve): every request must yield a valid ranking "
             "even while the primary model is failing",
    )
    smoke.add_argument("--requests", type=int, default=100,
                       help="total requests (half faulty, half clear)")
    smoke.add_argument("--seed", type=int, default=0)
    smoke.add_argument("--error-rate", type=float, default=0.35,
                       help="injected exception probability per call")
    smoke.add_argument("--nan-rate", type=float, default=0.35,
                       help="injected NaN-score probability per call")
    smoke.add_argument("--latency-rate", type=float, default=0.1,
                       help="injected latency-spike probability per call")
    smoke.add_argument("--data", default=None,
                       help="interactions CSV (default: synthetic tiny)")
    smoke.add_argument("--checkpoint", default=None,
                       help="pre-trained VSAN checkpoint (default: train "
                            "a throwaway one)")
    smoke.add_argument("--epochs", type=int, default=2,
                       help="training budget for throwaway models")
    smoke.add_argument("--engine", action="store_true",
                       help="serve through the InferenceEngine "
                            "(micro-batching + score cache) via "
                            "recommend_many instead of one call per "
                            "request; the same fault invariants must "
                            "hold, plus real coalescing/cache activity")
    smoke.add_argument("--retrieval", action="store_true",
                       help="(implies --engine) serve through an "
                            "approximate IVF retrieval index + exact "
                            "re-rank; the run asserts the two-stage "
                            "path actually handled requests")
    smoke.add_argument("--cluster", action="store_true",
                       help="drill the sharded ServingCluster instead: "
                            "open-loop Zipf load over a 1M-user "
                            "population, a SIGKILL-one-shard drill "
                            "(must shed, never hang, accounting exact), "
                            "and a canary rollout that must roll back "
                            "when the canary trips the primary breaker")
    smoke.add_argument("--chaos", action="store_true",
                       help="seeded chaos drill against the "
                            "self-healing replicated cluster: a "
                            "deterministic fault schedule SIGKILLs and "
                            "stalls replicas under paced load; "
                            "replicated shards must lose zero "
                            "requests, accounting must hold at every "
                            "checkpoint, and the supervisor must "
                            "respawn every killed worker back to full "
                            "capacity (the seed is printed for replay)")
    smoke.add_argument("--shards", type=int, default=3,
                       help="(with --cluster/--chaos) shard key-ranges")
    smoke.add_argument("--replicas", type=int, default=2,
                       help="(with --chaos) replicas per shard")
    smoke.add_argument("--faults", type=int, default=6,
                       help="(with --chaos) scheduled faults")
    smoke.add_argument(
        "--compile", action=argparse.BooleanOptionalAction, default=True,
        help="compiled trace-and-replay scoring forwards (on by "
             "default; --no-compile forces eager model calls)")
    smoke.add_argument("--quiet", action="store_true")
    smoke.set_defaults(func=cmd_serve_smoke)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
