"""Model zoo: per-dataset hyperparameters and a uniform fit interface.

Mirrors Section V-D (scaled to the synthetic datasets): Adam with lr
0.001 and batch size 128 for every neural model; VSAN uses ``h1=1, h2=1``
on Beauty and ``h1=3, h2=1`` on ML-1M; dropout 0.5 on Beauty and 0.2 on
ML-1M for the attention models; embedding dimensions scale the paper's
200 down to the synthetic catalogue sizes.
"""

from __future__ import annotations

from ..core import VSAN
from ..eval import EvaluationResult, evaluate_recommender
from ..models import (
    BPR,
    FPMC,
    POP,
    SASRec,
    SVAE,
    Caser,
    GRU4Rec,
    Recommender,
    TransRec,
)
from ..train import KLAnnealing, Trainer, TrainerConfig
from .datasets import LoadedDataset

__all__ = [
    "MODEL_NAMES",
    "build_model",
    "fit_model",
    "train_and_evaluate",
    "default_trainer_config",
    "default_annealing",
    "vsan_defaults",
]

MODEL_NAMES = (
    "POP",
    "BPR",
    "FPMC",
    "TransRec",
    "GRU4Rec",
    "Caser",
    "SVAE",
    "SASRec",
    "VSAN",
)

# Per-dataset widths / dropout, scaled analogues of Section V-D.  The
# paper uses d=200 and dropout 0.5/0.2 at Amazon/ML-1M scale; at our
# scaled-down d=48 the tuned optimum shifts to 0.3/0.2 (Figure 5's sweep
# regenerates the full curve).
_DIM = {"beauty": 48, "ml1m": 48}
_DROPOUT = {"beauty": 0.3, "ml1m": 0.2}
# VSAN's reparameterization noise already regularizes, so its tuned
# dropout sits below the deterministic models' (the paper likewise tunes
# dropout per model; Figure 5 regenerates VSAN's full curve).
_VSAN_DROPOUT = {"beauty": 0.2, "ml1m": 0.2}
# Paper: (1,1) on Beauty, (3,1) on ML-1M.  At our scale the ML-1M grid
# is a near-tie between (3,1) and (1,1) — exactly as in the paper's own
# Table IV — so the paper's choices are kept (the grid regenerates via
# the table4 experiment).
_VSAN_BLOCKS = {"beauty": (1, 1), "ml1m": (3, 1)}
_CLASSIC_EPOCHS = {"beauty": 40, "ml1m": 40}


def default_annealing(fast: bool = False) -> KLAnnealing:
    """The KL schedule used by VSAN/SVAE unless an experiment overrides
    it: hold β=0 briefly, then ramp to a small target.

    The target is small because Eq. 20 sums the KL over all ``d`` latent
    dimensions — at d=48 a KL weight of ~0.005 balances a reconstruction
    term of ~ln(N); larger targets collapse the posterior (Figure 6
    regenerates the full sweep).
    """
    if fast:
        return KLAnnealing(target=0.005, warmup_steps=10, anneal_steps=60)
    return KLAnnealing(target=0.005, warmup_steps=50, anneal_steps=300)


def default_trainer_config(
    fast: bool = False, seed: int = 0, sweep: bool = False
) -> TrainerConfig:
    """Training budget.

    - full (Table III): early-stopped 60 epochs;
    - sweep (Tables IV–VI, Figures 3–6: dozens of configurations where
      only *relative* ordering matters): early-stopped 30 epochs;
    - fast: 8 epochs, no early stopping (smoke scale).
    """
    if fast:
        return TrainerConfig(epochs=8, batch_size=128, seed=seed)
    return TrainerConfig(
        epochs=30 if sweep else 80,
        batch_size=128,
        seed=seed,
        patience=4 if sweep else 5,
        eval_every=2,
    )


def vsan_defaults(dataset: LoadedDataset, fast: bool = False,
                  seed: int = 0) -> dict:
    """Constructor kwargs for the paper's per-dataset VSAN setting."""
    h1, h2 = _VSAN_BLOCKS[dataset.key]
    return {
        "num_items": dataset.num_items,
        "max_length": dataset.max_length,
        "dim": _DIM[dataset.key],
        "h1": h1,
        "h2": h2,
        "k": 1,
        "dropout_rate": _VSAN_DROPOUT[dataset.key],
        "annealing": default_annealing(fast),
        "seed": seed,
    }


def build_model(
    name: str, dataset: LoadedDataset, seed: int = 0, fast: bool = False,
    **overrides,
) -> Recommender:
    """Instantiate a Table III model with its per-dataset defaults."""
    num_items = dataset.num_items
    max_length = dataset.max_length
    dim = _DIM[dataset.key]
    dropout = _DROPOUT[dataset.key]
    classic_epochs = 10 if fast else _CLASSIC_EPOCHS[dataset.key]
    if name == "POP":
        return POP(num_items)
    classic_defaults = {"dim": 32, "epochs": classic_epochs, "seed": seed}
    neural_defaults: dict = {"seed": seed}
    if name == "BPR":
        return BPR(num_items, **{**classic_defaults, **overrides})
    if name == "FPMC":
        return FPMC(num_items, **{**classic_defaults, **overrides})
    if name == "TransRec":
        return TransRec(num_items, **{**classic_defaults, **overrides})
    if name == "GRU4Rec":
        params = {**neural_defaults, "dim": dim, "dropout_rate": 0.2}
        params.update(overrides)
        return GRU4Rec(num_items, max_length, **params)
    if name == "Caser":
        params = {
            **neural_defaults, "dim": dim, "window": 5, "dropout_rate": 0.2
        }
        params.update(overrides)
        return Caser(num_items, max_length, **params)
    if name == "SVAE":
        params = {
            **neural_defaults,
            "dim": dim,
            "k": 2,
            "dropout_rate": 0.2,
            "annealing": default_annealing(fast),
        }
        params.update(overrides)
        return SVAE(num_items, max_length, **params)
    if name == "SASRec":
        params = {
            **neural_defaults,
            "dim": dim,
            "num_blocks": 2,
            "dropout_rate": dropout,
        }
        params.update(overrides)
        return SASRec(num_items, max_length, **params)
    if name == "VSAN":
        params = vsan_defaults(dataset, fast=fast, seed=seed)
        params.update(overrides)
        return VSAN(**params)
    raise KeyError(f"unknown model {name!r}; have {MODEL_NAMES}")


def fit_model(
    model: Recommender,
    dataset: LoadedDataset,
    fast: bool = False,
    seed: int = 0,
    trainer_config: TrainerConfig | None = None,
    use_validation: bool = True,
    sweep: bool = False,
) -> Recommender:
    """Fit any zoo model: classic models self-train, neural ones use the
    Trainer with early stopping on the validation users."""
    from ..models.base import NeuralSequentialRecommender

    if isinstance(model, NeuralSequentialRecommender):
        config = trainer_config or default_trainer_config(
            fast, seed=seed, sweep=sweep
        )
        validation = (
            dataset.split.validation
            if use_validation and config.patience is not None
            else None
        )
        Trainer(config).fit(model, dataset.split.train, validation=validation)
        return model
    return model.fit(dataset.split.train)


def train_and_evaluate(
    name: str,
    dataset: LoadedDataset,
    seed: int = 0,
    fast: bool = False,
    **overrides,
) -> EvaluationResult:
    """Build + fit + evaluate on the dataset's test users."""
    model = build_model(name, dataset, seed=seed, fast=fast, **overrides)
    fit_model(model, dataset, fast=fast, seed=seed)
    return evaluate_recommender(model, dataset.split.test)
