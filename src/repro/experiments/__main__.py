"""Command-line entry: ``python -m repro.experiments [ids...]``.

Runs the requested experiments (default: all) and prints each table.
``--fast`` uses the reduced-scale datasets/budgets; ``--save DIR`` also
writes one JSON per experiment.
"""

from __future__ import annotations

import argparse
import sys
import time

from .registry import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=sorted(EXPERIMENTS),
        help=f"experiment ids (default: all of {sorted(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="reduced-scale datasets and training budgets",
    )
    parser.add_argument(
        "--save", metavar="DIR", default=None,
        help="also write <id>.json files into DIR",
    )
    args = parser.parse_args(argv)

    for experiment_id in args.experiments:
        started = time.time()
        result = run_experiment(experiment_id, fast=args.fast)
        print(result.render())
        print(f"({time.time() - started:.1f}s)\n")
        if args.save:
            result.save(args.save)
    return 0


if __name__ == "__main__":
    sys.exit(main())
