"""Result containers and plain-text table rendering for the experiment
harness.  Every table/figure runner returns an :class:`ExperimentResult`
that renders the same rows the paper reports and serializes to JSON for
EXPERIMENTS.md bookkeeping.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ExperimentResult", "format_cell"]


def format_cell(value) -> str:
    """Human formatting: floats to 3 decimals, everything else via str."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


@dataclass
class ExperimentResult:
    """One regenerated table or figure.

    Attributes:
        experiment_id: e.g. ``"table3"`` or ``"fig5"``.
        title: what the paper calls it.
        headers: column names.
        rows: list of row value lists (floats are metric percentages).
        notes: free-form commentary (e.g. which shape claims held).
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def render(self) -> str:
        """Fixed-width text table (the benchmark harness prints this)."""
        table = [self.headers] + [
            [format_cell(value) for value in row] for row in self.rows
        ]
        widths = [
            max(len(row[col]) for row in table)
            for col in range(len(self.headers))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for row_number, row in enumerate(table):
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
            if row_number == 0:
                lines.append("  ".join("-" * width for width in widths))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": self.headers,
            "rows": self.rows,
            "notes": self.notes,
        }

    def save(self, directory: str | Path) -> Path:
        """Write ``<experiment_id>.json`` into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment_id}.json"
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2)
        return path

    def column(self, header: str) -> list:
        """Extract one column by header name (for assertions in benches)."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentResult":
        """Read a result previously written by :meth:`save`."""
        with open(path) as handle:
            payload = json.load(handle)
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            headers=payload["headers"],
            rows=payload["rows"],
            notes=payload.get("notes", ""),
        )
