"""Experiment harness: regenerate every table and figure of Section V."""

from .datasets import BEAUTY, DATASETS, ML1M, LoadedDataset, load_dataset
from .registry import EXPERIMENTS, ExperimentSpec, run_experiment
from .reporting import ExperimentResult
from .zoo import MODEL_NAMES, build_model, fit_model, train_and_evaluate

__all__ = [
    "BEAUTY",
    "DATASETS",
    "EXPERIMENTS",
    "ExperimentResult",
    "ExperimentSpec",
    "LoadedDataset",
    "ML1M",
    "MODEL_NAMES",
    "build_model",
    "fit_model",
    "load_dataset",
    "run_experiment",
    "train_and_evaluate",
]
