"""Figure 3: performance of VSAN and SVAE under different next-``k``.

Both models support predicting the next ``k`` items per position
(Eq. 18 for VSAN; native to SVAE).  The paper's claims: VSAN beats SVAE
at every ``k``, and performance rises then falls in ``k`` (best around
k=2 for VSAN, k=4 for SVAE).
"""

from __future__ import annotations

from ..eval import evaluate_recommender
from .datasets import DATASETS, load_dataset
from .reporting import ExperimentResult
from .zoo import build_model, fit_model

__all__ = ["run"]


def run(
    fast: bool = False,
    k_values: tuple[int, ...] = (1, 2, 3, 4, 5),
    datasets: tuple[str, ...] = tuple(DATASETS),
    seed: int = 0,
) -> ExperimentResult:
    if fast:
        k_values = tuple(k for k in k_values if k <= 2)
    result = ExperimentResult(
        experiment_id="fig3",
        title="Performance under different k (percent)",
        headers=["dataset", "model", "k", "ndcg@20", "recall@20"],
    )
    for dataset_key in datasets:
        dataset = load_dataset(dataset_key, fast=fast)
        for model_name in ("VSAN", "SVAE"):
            for k in k_values:
                model = build_model(
                    model_name, dataset, seed=seed, fast=fast, k=k
                )
                fit_model(model, dataset, fast=fast, seed=seed, sweep=True)
                values = evaluate_recommender(
                    model, dataset.split.test
                ).as_percentages()
                result.rows.append(
                    [
                        dataset_key,
                        model_name,
                        k,
                        values["ndcg@20"],
                        values["recall@20"],
                    ]
                )
    return result
