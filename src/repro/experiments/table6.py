"""Table VI: influence of the point-wise feed-forward network.

Four variants: VSAN-all-feed (FFN removed from both stacks),
VSAN-infer-feed (removed from the inference stack only), VSAN-gene-feed
(removed from the generative stack only), and the full VSAN.
"""

from __future__ import annotations

from ..eval import evaluate_recommender
from .datasets import DATASETS, load_dataset
from .reporting import ExperimentResult
from .zoo import build_model, fit_model

__all__ = ["run", "METRICS", "VARIANTS"]

METRICS = ("ndcg@10", "recall@10", "ndcg@20", "recall@20")

# label -> (inference_feedforward, generative_feedforward); the paper's
# names describe which FFN was *removed*.
VARIANTS: tuple[tuple[str, bool, bool], ...] = (
    ("VSAN-all-feed", False, False),
    ("VSAN-infer-feed", False, True),
    ("VSAN-gene-feed", True, False),
    ("VSAN", True, True),
)


def run(
    fast: bool = False,
    datasets: tuple[str, ...] = tuple(DATASETS),
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table6",
        title="Influence of the point-wise feed-forward network (percent)",
        headers=["dataset", "method", *METRICS],
    )
    for dataset_key in datasets:
        dataset = load_dataset(dataset_key, fast=fast)
        for label, infer_ffn, gene_ffn in VARIANTS:
            model = build_model(
                "VSAN",
                dataset,
                seed=seed,
                fast=fast,
                inference_feedforward=infer_ffn,
                generative_feedforward=gene_ffn,
            )
            fit_model(model, dataset, fast=fast, seed=seed, sweep=True)
            values = evaluate_recommender(
                model, dataset.split.test
            ).as_percentages()
            result.rows.append(
                [dataset_key, label] + [values[m] for m in METRICS]
            )
    return result
