"""Figure 4: performance of VSAN and SASRec under different embedding
dimension ``d`` (the paper sweeps 10..400; we sweep a scaled range).

Claims to reproduce: VSAN above SASRec across the sweep; performance
rises with ``d`` then saturates / dips (overfitting at large ``d``).
"""

from __future__ import annotations

from ..eval import evaluate_recommender
from .datasets import DATASETS, load_dataset
from .reporting import ExperimentResult
from .zoo import build_model, fit_model

__all__ = ["run"]


def run(
    fast: bool = False,
    dims: tuple[int, ...] = (8, 16, 32, 48, 96),
    datasets: tuple[str, ...] = tuple(DATASETS),
    seed: int = 0,
) -> ExperimentResult:
    if fast:
        dims = (8, 32)
    result = ExperimentResult(
        experiment_id="fig4",
        title="Performance under different embedding dimension d (percent)",
        headers=["dataset", "model", "d", "ndcg@20", "recall@20"],
    )
    for dataset_key in datasets:
        dataset = load_dataset(dataset_key, fast=fast)
        for model_name in ("VSAN", "SASRec"):
            for dim in dims:
                model = build_model(
                    model_name, dataset, seed=seed, fast=fast, dim=dim
                )
                fit_model(model, dataset, fast=fast, seed=seed, sweep=True)
                values = evaluate_recommender(
                    model, dataset.split.test
                ).as_percentages()
                result.rows.append(
                    [
                        dataset_key,
                        model_name,
                        dim,
                        values["ndcg@20"],
                        values["recall@20"],
                    ]
                )
    return result
