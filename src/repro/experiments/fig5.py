"""Figure 5: VSAN performance under different dropout rates.

Claim to reproduce: no dropout is suboptimal, moderate dropout is best
(0.5 on sparse Beauty, 0.2 on dense ML-1M in the paper), and large rates
collapse performance.
"""

from __future__ import annotations

from ..eval import evaluate_recommender
from .datasets import DATASETS, load_dataset
from .reporting import ExperimentResult
from .zoo import build_model, fit_model

__all__ = ["run"]


def run(
    fast: bool = False,
    rates: tuple[float, ...] = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9),
    datasets: tuple[str, ...] = tuple(DATASETS),
    seed: int = 0,
) -> ExperimentResult:
    if fast:
        rates = (0.0, 0.3, 0.9)
    result = ExperimentResult(
        experiment_id="fig5",
        title="VSAN performance under different dropout rates (percent)",
        headers=["dataset", "dropout", "ndcg@20", "recall@20"],
    )
    for dataset_key in datasets:
        dataset = load_dataset(dataset_key, fast=fast)
        for rate in rates:
            model = build_model(
                "VSAN", dataset, seed=seed, fast=fast, dropout_rate=rate
            )
            fit_model(model, dataset, fast=fast, seed=seed, sweep=True)
            values = evaluate_recommender(
                model, dataset.split.test
            ).as_percentages()
            result.rows.append(
                [dataset_key, rate, values["ndcg@20"], values["recall@20"]]
            )
    return result
