"""Table II: dataset statistics after preprocessing."""

from __future__ import annotations

from .datasets import DATASETS, load_dataset
from .reporting import ExperimentResult

__all__ = ["run"]


def run(fast: bool = False) -> ExperimentResult:
    """Regenerate Table II for the synthetic Beauty-like / ML1M-like pair."""
    result = ExperimentResult(
        experiment_id="table2",
        title="Dataset statistics",
        headers=[
            "dataset",
            "#user",
            "#item",
            "#interactions",
            "sparsity(%)",
            "#held-out users",
        ],
        notes=(
            "Synthetic stand-ins for Amazon Beauty / ML-1M (no network "
            "access); the shape claim is the sparsity and sequence-length "
            "contrast between the two, not absolute counts."
        ),
    )
    for key in DATASETS:
        dataset = load_dataset(key, fast=fast)
        stats = dataset.corpus.statistics()
        result.rows.append(
            [
                key,
                stats.num_users,
                stats.num_items,
                stats.num_interactions,
                100.0 * stats.sparsity,
                len(dataset.split.test),
            ]
        )
    return result
