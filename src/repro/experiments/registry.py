"""Registry mapping every paper table/figure (plus extra ablations) to
its runner.  ``run_experiment("table3")`` regenerates Table III;
``python -m repro.experiments table3`` does the same from the shell.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from . import (
    ablations,
    complexity,
    significance,
    fig3,
    fig4,
    fig5,
    fig6,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from .reporting import ExperimentResult

__all__ = ["ExperimentSpec", "EXPERIMENTS", "run_experiment"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment."""

    experiment_id: str
    title: str
    runner: Callable[..., ExperimentResult]


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec("table2", "Dataset statistics", table2.run),
        ExperimentSpec("table3", "Overall performance", table3.run),
        ExperimentSpec(
            "table4", "Self-attention block grid (h1, h2)", table4.run
        ),
        ExperimentSpec("table5", "Latent variable ablation", table5.run),
        ExperimentSpec("table6", "Feed-forward ablation", table6.run),
        ExperimentSpec("fig3", "Next-k sweep (VSAN vs SVAE)", fig3.run),
        ExperimentSpec(
            "fig4", "Embedding-dimension sweep (VSAN vs SASRec)", fig4.run
        ),
        ExperimentSpec("fig5", "Dropout sweep", fig5.run),
        ExperimentSpec("fig6", "Beta / KL-annealing sweep", fig6.run),
        ExperimentSpec(
            "ablation_tying", "Output-projection tying", ablations.run_tying
        ),
        ExperimentSpec(
            "ablation_eval_z", "Evaluation-time latent", ablations.run_eval_z
        ),
        ExperimentSpec(
            "ablation_positions", "Positional-encoding ablation",
            ablations.run_positions,
        ),
        ExperimentSpec(
            "ablation_samples", "Multi-sample ELBO ablation",
            ablations.run_samples,
        ),
        ExperimentSpec(
            "ablation_protocol", "Strong vs weak generalization",
            ablations.run_protocol,
        ),
        ExperimentSpec(
            "complexity", "Section IV-F complexity measurements",
            complexity.run,
        ),
        ExperimentSpec(
            "significance", "Paired bootstrap: VSAN vs SASRec",
            significance.run,
        ),
    )
}


def run_experiment(experiment_id: str, fast: bool = False,
                   **kwargs) -> ExperimentResult:
    """Look up and run one experiment by id."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"have {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id].runner(fast=fast, **kwargs)
