"""Table III: overall performance of all nine models on both datasets.

Reports NDCG / Recall / Precision at 10 and 20 (in percentage points)
per model per dataset, plus the paper's "Improv." row — VSAN's relative
improvement over the strongest baseline per metric.
"""

from __future__ import annotations

from .datasets import DATASETS, load_dataset
from .reporting import ExperimentResult
from .zoo import MODEL_NAMES, train_and_evaluate

__all__ = ["run", "METRICS"]

METRICS = (
    "ndcg@10",
    "ndcg@20",
    "recall@10",
    "recall@20",
    "precision@10",
    "precision@20",
)


def run(
    fast: bool = False,
    models: tuple[str, ...] = MODEL_NAMES,
    datasets: tuple[str, ...] = tuple(DATASETS),
    seed: int = 0,
    num_seeds: int = 1,
) -> ExperimentResult:
    """Train and evaluate every model on every dataset.

    ``num_seeds > 1`` trains each model that many times (seeds
    ``seed .. seed + num_seeds - 1``) and reports the mean, mirroring the
    paper's averaging over five runs.
    """
    result = ExperimentResult(
        experiment_id="table3",
        title="Overall performance of all models (percent)",
        headers=["dataset", "model", *METRICS],
    )
    if num_seeds > 1:
        result.notes = f"mean over {num_seeds} seeds"
    per_dataset: dict[str, dict[str, dict[str, float]]] = {}
    for dataset_key in datasets:
        dataset = load_dataset(dataset_key, fast=fast)
        per_dataset[dataset_key] = {}
        for model_name in models:
            runs = [
                train_and_evaluate(
                    model_name, dataset, seed=seed + offset, fast=fast
                ).as_percentages()
                for offset in range(num_seeds)
            ]
            values = {
                metric: sum(run[metric] for run in runs) / len(runs)
                for metric in METRICS
            }
            per_dataset[dataset_key][model_name] = values
            result.rows.append(
                [dataset_key, model_name]
                + [values[metric] for metric in METRICS]
            )
    if "VSAN" in models and len(models) > 1:
        for dataset_key in datasets:
            scores = per_dataset[dataset_key]
            improvements = []
            for metric in METRICS:
                best_baseline = max(
                    scores[name][metric]
                    for name in models
                    if name != "VSAN"
                )
                ours = scores["VSAN"][metric]
                improvements.append(
                    100.0 * (ours - best_baseline) / best_baseline
                    if best_baseline > 0
                    else float("nan")
                )
            result.rows.append([dataset_key, "Improv.(%)"] + improvements)
    return result
