"""Table V: influence of the latent variable z (VSAN vs VSAN-z).

VSAN-z removes the Latent Variable Layer: the inference stack's output
feeds the generative stack directly (``use_latent=False``), so the model
degenerates to a deterministic two-stack self-attention network.
"""

from __future__ import annotations

from ..eval import evaluate_recommender
from .datasets import DATASETS, load_dataset
from .reporting import ExperimentResult
from .zoo import build_model, fit_model

__all__ = ["run", "METRICS"]

METRICS = ("ndcg@10", "recall@10", "ndcg@20", "recall@20")


def run(
    fast: bool = False,
    datasets: tuple[str, ...] = tuple(DATASETS),
    seed: int = 0,
    num_seeds: int = 1,
) -> ExperimentResult:
    """VSAN vs VSAN-z, optionally averaged over ``num_seeds`` runs.

    The gap the paper reports is a few relative percent — smaller than
    single-run variance at this scale — so full-scale regeneration
    should average several seeds (the paper itself averages five runs).
    """
    result = ExperimentResult(
        experiment_id="table5",
        title="Influence of the latent variable z (percent)",
        headers=["dataset", "method", *METRICS],
    )
    if num_seeds > 1:
        result.notes = f"mean over {num_seeds} seeds"
    for dataset_key in datasets:
        dataset = load_dataset(dataset_key, fast=fast)
        scores: dict[str, dict[str, float]] = {}
        for label, use_latent in (("VSAN-z", False), ("VSAN", True)):
            runs = []
            for offset in range(num_seeds):
                model = build_model(
                    "VSAN", dataset, seed=seed + offset, fast=fast,
                    use_latent=use_latent,
                )
                # The headline ablation gets the full Table III training
                # budget — the VSAN/VSAN-z gap is small enough that a
                # reduced sweep budget would drown it in noise.
                fit_model(model, dataset, fast=fast, seed=seed + offset)
                runs.append(
                    evaluate_recommender(
                        model, dataset.split.test
                    ).as_percentages()
                )
            values = {
                m: sum(run[m] for run in runs) / len(runs) for m in METRICS
            }
            scores[label] = values
            result.rows.append(
                [dataset_key, label] + [values[m] for m in METRICS]
            )
        result.rows.append(
            [dataset_key, "Improv.(%)"]
            + [
                100.0 * (scores["VSAN"][m] - scores["VSAN-z"][m])
                / scores["VSAN-z"][m]
                if scores["VSAN-z"][m] > 0
                else float("nan")
                for m in METRICS
            ]
        )
    return result
