"""Section IV-F: time and space complexity, measured.

The paper argues VSAN's cost is O(n^2 d + n d^2) per layer — the same
order as SASRec, i.e. handling uncertainty costs no extra asymptotic
time — while RNNs pay O(n d^2) *sequential* steps that cannot be
parallelized.  This experiment measures wall-clock per training step as
the window ``n`` grows for VSAN, SASRec, and GRU4Rec, plus parameter
counts (the space side: O(Nd + nd + d^2)).

These are substrate-relative numbers (a numpy engine, not a GPU), so the
claim checked is *relative scaling*: VSAN tracks SASRec closely, and the
GRU's step time grows linearly in ``n`` with a large sequential constant.
"""

from __future__ import annotations

import time

import numpy as np

from ..core import VSAN
from ..models import SASRec, GRU4Rec
from .reporting import ExperimentResult

__all__ = ["run"]


def _step_time(model, padded: np.ndarray, repeats: int) -> float:
    model.train()
    # One warmup step, then the timed median.
    times = []
    for _ in range(repeats + 1):
        model.zero_grad()
        started = time.perf_counter()
        loss = model.training_loss(padded)
        loss.backward()
        times.append(time.perf_counter() - started)
    return float(np.median(times[1:]))


def run(
    fast: bool = False,
    lengths: tuple[int, ...] | None = None,
    dim: int = 48,
    num_items: int = 500,
    batch_size: int = 32,
    seed: int = 0,
) -> ExperimentResult:
    """Measure per-step wall clock vs window length for the three
    architectures the complexity analysis compares."""
    if lengths is None:
        lengths = (10, 20) if fast else (10, 20, 40, 80)
    if fast:
        batch_size = min(batch_size, 16)
    repeats = 2 if fast else 3
    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        experiment_id="complexity",
        title="Section IV-F: training-step time (s) and parameters vs n",
        headers=["model", "n", "step_seconds", "parameters"],
        notes=(
            "Relative scaling on the numpy substrate; the paper's claim "
            "is that VSAN matches SASRec's O(n^2 d) order while RNNs pay "
            "O(n d^2) sequential steps."
        ),
    )
    builders = {
        "VSAN": lambda n: VSAN(num_items, n, dim=dim, h1=1, h2=1,
                               seed=seed),
        "SASRec": lambda n: SASRec(num_items, n, dim=dim, num_blocks=2,
                                   seed=seed),
        "GRU4Rec": lambda n: GRU4Rec(num_items, n, dim=dim, seed=seed),
    }
    for name, build in builders.items():
        for length in lengths:
            model = build(length)
            padded = np.zeros((batch_size, length + 1), dtype=np.int64)
            fill = max(2, length // 2)
            padded[:, -fill:] = rng.integers(
                1, num_items + 1, size=(batch_size, fill)
            )
            seconds = _step_time(model, padded, repeats)
            result.rows.append(
                [name, length, seconds, model.num_parameters()]
            )
    return result
