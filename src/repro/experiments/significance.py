"""Statistical significance of VSAN's headline win (Section V-E).

The paper states results are averaged over five runs and that "the error
of every experimental result is negligible".  This experiment makes that
checkable for the central comparison — VSAN vs SASRec, the strongest
deterministic baseline — with a *paired bootstrap over held-out users*:
both models are trained with the Table III budget, each held-out user is
scored by both, and the per-user metric differences are resampled.
"""

from __future__ import annotations

from ..eval.significance import paired_bootstrap, per_user_metric
from ..tensor.random import make_rng
from .datasets import DATASETS, load_dataset
from .reporting import ExperimentResult
from .zoo import build_model, fit_model

__all__ = ["run"]


def run(
    fast: bool = False,
    datasets: tuple[str, ...] = tuple(DATASETS),
    metrics: tuple[str, ...] = ("ndcg@10", "recall@20"),
    baseline: str = "SASRec",
    seed: int = 0,
    num_resamples: int = 2000,
) -> ExperimentResult:
    """Paired bootstrap of VSAN − baseline per dataset and metric."""
    result = ExperimentResult(
        experiment_id="significance",
        title=f"Paired bootstrap: VSAN vs {baseline} (points, per user)",
        headers=[
            "dataset",
            "metric",
            "mean_diff",
            "ci_low",
            "ci_high",
            "p_value",
            "significant",
        ],
        notes=(
            "Differences in percentage points over held-out users; "
            "'significant' = the 95% CI excludes zero."
        ),
    )
    for dataset_key in datasets:
        dataset = load_dataset(dataset_key, fast=fast)
        models = {}
        for name in ("VSAN", baseline):
            model = build_model(name, dataset, seed=seed, fast=fast)
            fit_model(model, dataset, fast=fast, seed=seed)
            models[name] = model
        for metric in metrics:
            ours = per_user_metric(
                models["VSAN"], dataset.split.test, metric
            )
            theirs = per_user_metric(
                models[baseline], dataset.split.test, metric
            )
            report = paired_bootstrap(
                ours, theirs, make_rng(seed + 1),
                num_resamples=num_resamples,
            )
            result.rows.append(
                [
                    dataset_key,
                    metric,
                    100.0 * report.mean_difference,
                    100.0 * report.ci_low,
                    100.0 * report.ci_high,
                    report.p_value,
                    report.significant,
                ]
            )
    return result
