"""Extra ablations beyond the paper's own (DESIGN.md §5):

- **weight tying**: Eq. 19 uses a separate output projection ``W_g``;
  SASRec ties scoring to the item embedding table.  Which matters?
- **evaluation-time z**: the paper scores from the posterior mean; how
  much is lost by sampling at evaluation instead?
"""

from __future__ import annotations

from ..eval import evaluate_recommender
from .datasets import DATASETS, load_dataset
from .reporting import ExperimentResult
from .zoo import build_model, fit_model

__all__ = [
    "run_tying",
    "run_eval_z",
    "run_positions",
    "run_samples",
    "run_protocol",
]

_METRICS = ("ndcg@10", "ndcg@20", "recall@10", "recall@20")


def run_tying(
    fast: bool = False,
    datasets: tuple[str, ...] = tuple(DATASETS),
    seed: int = 0,
) -> ExperimentResult:
    """Separate W_g (paper, Eq. 19) vs tied item-embedding scoring."""
    result = ExperimentResult(
        experiment_id="ablation_tying",
        title="VSAN output projection: separate W_g vs tied embeddings",
        headers=["dataset", "variant", *_METRICS],
    )
    for dataset_key in datasets:
        dataset = load_dataset(dataset_key, fast=fast)
        for label, tie in (("separate-Wg", False), ("tied", True)):
            model = build_model(
                "VSAN", dataset, seed=seed, fast=fast, tie_weights=tie
            )
            fit_model(model, dataset, fast=fast, seed=seed, sweep=True)
            values = evaluate_recommender(
                model, dataset.split.test
            ).as_percentages()
            result.rows.append(
                [dataset_key, label] + [values[m] for m in _METRICS]
            )
    return result


def run_eval_z(
    fast: bool = False,
    datasets: tuple[str, ...] = tuple(DATASETS),
    seed: int = 0,
) -> ExperimentResult:
    """Posterior mean vs sampled z at evaluation (same trained weights)."""
    result = ExperimentResult(
        experiment_id="ablation_eval_z",
        title="VSAN evaluation-time latent: posterior mean vs sample",
        headers=["dataset", "variant", *_METRICS],
    )
    for dataset_key in datasets:
        dataset = load_dataset(dataset_key, fast=fast)
        model = build_model("VSAN", dataset, seed=seed, fast=fast)
        fit_model(model, dataset, fast=fast, seed=seed, sweep=True)
        for label, sample in (("mean", False), ("sampled", True)):
            model.sample_at_eval = sample
            values = evaluate_recommender(
                model, dataset.split.test
            ).as_percentages()
            result.rows.append(
                [dataset_key, label] + [values[m] for m in _METRICS]
            )
        model.sample_at_eval = False
    return result


def run_positions(
    fast: bool = False,
    datasets: tuple[str, ...] = tuple(DATASETS),
    seed: int = 0,
) -> ExperimentResult:
    """Learnable positional matrix (paper, Eq. 4) vs fixed sinusoidal."""
    result = ExperimentResult(
        experiment_id="ablation_positions",
        title="VSAN positional encoding: learnable P vs sinusoidal",
        headers=["dataset", "variant", *_METRICS],
    )
    for dataset_key in datasets:
        dataset = load_dataset(dataset_key, fast=fast)
        for variant in ("learnable", "sinusoidal"):
            model = build_model(
                "VSAN", dataset, seed=seed, fast=fast, positions=variant
            )
            fit_model(model, dataset, fast=fast, seed=seed, sweep=True)
            values = evaluate_recommender(
                model, dataset.split.test
            ).as_percentages()
            result.rows.append(
                [dataset_key, variant] + [values[m] for m in _METRICS]
            )
    return result


def run_samples(
    fast: bool = False,
    datasets: tuple[str, ...] = tuple(DATASETS),
    sample_counts: tuple[int, ...] = (1, 4),
    seed: int = 0,
) -> ExperimentResult:
    """Single-sample ELBO (paper) vs multi-sample Monte-Carlo average."""
    result = ExperimentResult(
        experiment_id="ablation_samples",
        title="VSAN ELBO samples per step: 1 (paper) vs L > 1",
        headers=["dataset", "samples", *_METRICS],
    )
    for dataset_key in datasets:
        dataset = load_dataset(dataset_key, fast=fast)
        for count in sample_counts:
            model = build_model(
                "VSAN", dataset, seed=seed, fast=fast, num_samples=count
            )
            fit_model(model, dataset, fast=fast, seed=seed, sweep=True)
            values = evaluate_recommender(
                model, dataset.split.test
            ).as_percentages()
            result.rows.append(
                [dataset_key, count] + [values[m] for m in _METRICS]
            )
    return result


def run_protocol(
    fast: bool = False,
    datasets: tuple[str, ...] = tuple(DATASETS),
    seed: int = 0,
) -> ExperimentResult:
    """Strong vs weak generalization (the paper's Section V-A choice).

    The paper argues strong generalization — evaluating on users never
    seen in training — is "more robust and realistic" than the common
    weak protocol where the same user appears in both.  This experiment
    trains VSAN under both protocols on the same corpus and reports the
    gap (weak numbers are typically higher: the model has seen the very
    user it is ranking for).
    """
    from ..data import split_weak_generalization
    from ..train import Trainer
    from .zoo import default_trainer_config

    result = ExperimentResult(
        experiment_id="ablation_protocol",
        title="VSAN under strong vs weak generalization",
        headers=["dataset", "protocol", "#eval users", *_METRICS],
    )
    for dataset_key in datasets:
        dataset = load_dataset(dataset_key, fast=fast)
        protocols = (
            ("strong", dataset.split),
            ("weak", split_weak_generalization(dataset.corpus)),
        )
        for label, split in protocols:
            model = build_model("VSAN", dataset, seed=seed, fast=fast)
            config = default_trainer_config(fast, seed=seed, sweep=True)
            validation = (
                split.validation if config.patience is not None else None
            )
            Trainer(config).fit(model, split.train, validation=validation)
            values = evaluate_recommender(
                model, split.test
            ).as_percentages()
            result.rows.append(
                [dataset_key, label, len(split.test)]
                + [values[m] for m in _METRICS]
            )
    return result
