"""Table IV: Recall@20 over the (h1, h2) self-attention block grid.

``h1`` is the number of inference blocks, ``h2`` the number of
generative blocks; 0 means the corresponding stack is skipped (inference:
raw input embedding; generative: the latent feeds the prediction layer
directly), exactly as the paper defines the 0 rows/columns.
"""

from __future__ import annotations

from ..eval import evaluate_recommender
from .datasets import DATASETS, load_dataset
from .reporting import ExperimentResult
from .zoo import build_model, default_trainer_config, fit_model

__all__ = ["run"]


def run(
    fast: bool = False,
    block_counts: tuple[int, ...] = (0, 1, 2, 3),
    datasets: tuple[str, ...] = tuple(DATASETS),
    seed: int = 0,
) -> ExperimentResult:
    """Sweep the block grid; one row per (dataset, h2), one column per h1."""
    if fast:
        block_counts = tuple(h for h in block_counts if h <= 1)
    result = ExperimentResult(
        experiment_id="table4",
        title="Recall@20 vs number of self-attention blocks (percent)",
        headers=["dataset", "h2"] + [f"h1={h}" for h in block_counts],
    )
    config = default_trainer_config(fast, seed=seed, sweep=True)
    for dataset_key in datasets:
        dataset = load_dataset(dataset_key, fast=fast)
        for h2 in block_counts:
            row: list = [dataset_key, h2]
            for h1 in block_counts:
                model = build_model(
                    "VSAN", dataset, seed=seed, fast=fast, h1=h1, h2=h2
                )
                fit_model(model, dataset, fast=fast, seed=seed,
                          trainer_config=config)
                evaluation = evaluate_recommender(model, dataset.split.test)
                row.append(100.0 * evaluation["recall@20"])
            result.rows.append(row)
    return result
