"""Terminal line charts for the figure reproductions.

The paper's Figures 3–6 are line charts; the benchmark harness renders
each regenerated figure as an ASCII chart (one glyph per series) next to
the numeric table, so the *shape* claims — crossings, peaks, orderings —
are visible at a glance in CI logs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_line_chart", "chart_from_result"]

_GLYPHS = "o*x+#@%&"


def ascii_line_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series on one shared-axis ASCII grid.

    Args:
        series: label -> list of (x, y) points (need not be sorted).
        width, height: plot area in characters.
        x_label, y_label: axis captions.

    Returns:
        A multi-line string: legend, y-axis ticks, grid, x-axis ticks.
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 10 or height < 4:
        raise ValueError("chart needs at least 10x4 characters")
    points = [
        (x, y) for values in series.values() for x, y in values
    ]
    if not points:
        raise ValueError("series contain no points")
    xs = np.array([p[0] for p in points], dtype=np.float64)
    ys = np.array([p[1] for p in points], dtype=np.float64)
    x_low, x_high = float(xs.min()), float(xs.max())
    y_low, y_high = float(ys.min()), float(ys.max())
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_column(x: float) -> int:
        return int(round((x - x_low) / (x_high - x_low) * (width - 1)))

    def to_row(y: float) -> int:
        return (height - 1) - int(
            round((y - y_low) / (y_high - y_low) * (height - 1))
        )

    for index, (label, values) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        ordered = sorted(values)
        # Connect consecutive points with interpolated glyph dots.
        for (x1, y1), (x2, y2) in zip(ordered, ordered[1:]):
            steps = max(abs(to_column(x2) - to_column(x1)), 1)
            for step in range(steps + 1):
                t = step / steps
                column = to_column(x1 + t * (x2 - x1))
                row = to_row(y1 + t * (y2 - y1))
                if grid[row][column] == " ":
                    grid[row][column] = "." if 0 < step < steps else glyph
        for x, y in ordered:
            grid[to_row(y)][to_column(x)] = glyph

    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {label}"
        for i, label in enumerate(series)
    )
    lines = [legend]
    if y_label:
        lines.append(y_label)
    top_tick = f"{y_high:.2f}"
    bottom_tick = f"{y_low:.2f}"
    margin = max(len(top_tick), len(bottom_tick))
    for row_number, row in enumerate(grid):
        if row_number == 0:
            tick = top_tick.rjust(margin)
        elif row_number == height - 1:
            tick = bottom_tick.rjust(margin)
        else:
            tick = " " * margin
        lines.append(f"{tick} |{''.join(row)}")
    axis = " " * margin + " +" + "-" * width
    lines.append(axis)
    x_ticks = (
        " " * margin
        + "  "
        + f"{x_low:g}".ljust(width - len(f"{x_high:g}"))
        + f"{x_high:g}"
    )
    lines.append(x_ticks + (f"  ({x_label})" if x_label else ""))
    return "\n".join(lines)


def chart_from_result(
    result,
    x_header: str,
    y_header: str,
    series_header: str | None = None,
    dataset: str | None = None,
    **chart_kwargs,
) -> str:
    """Build a chart from an :class:`ExperimentResult`'s rows.

    Args:
        result: the experiment result (figure sweeps).
        x_header / y_header: column names for the axes.
        series_header: column that names the series (e.g. ``"model"``);
            None puts everything in one series.
        dataset: filter rows to one dataset (column ``"dataset"``).
    """
    x_index = result.headers.index(x_header)
    y_index = result.headers.index(y_header)
    series_index = (
        result.headers.index(series_header) if series_header else None
    )
    dataset_index = (
        result.headers.index("dataset") if "dataset" in result.headers
        else None
    )
    series: dict[str, list[tuple[float, float]]] = {}
    for row in result.rows:
        if dataset is not None and dataset_index is not None:
            if row[dataset_index] != dataset:
                continue
        label = (
            str(row[series_index]) if series_index is not None else y_header
        )
        x_value = row[x_index]
        if isinstance(x_value, str):
            # e.g. fig6's "annealed" label — skip non-numeric x points.
            try:
                x_value = float(x_value)
            except ValueError:
                continue
        series.setdefault(label, []).append((float(x_value), float(row[y_index])))
    return ascii_line_chart(
        series, x_label=x_header, y_label=y_header, **chart_kwargs
    )
