"""Figure 6: VSAN performance under different (fixed) β vs KL annealing.

The paper fixes β at values in [0, 0.9] and shows the annealed schedule
(dotted line) beating every fixed setting on both datasets.
"""

from __future__ import annotations

from ..eval import evaluate_recommender
from ..train.annealing import ConstantBeta
from .datasets import DATASETS, load_dataset
from .reporting import ExperimentResult
from .zoo import build_model, default_annealing, fit_model

__all__ = ["run"]


def run(
    fast: bool = False,
    betas: tuple[float, ...] = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9),
    datasets: tuple[str, ...] = tuple(DATASETS),
    seed: int = 0,
) -> ExperimentResult:
    if fast:
        betas = (0.0, 0.5)
    result = ExperimentResult(
        experiment_id="fig6",
        title="VSAN performance under different beta (percent)",
        headers=["dataset", "beta", "ndcg@20", "recall@20"],
    )
    for dataset_key in datasets:
        dataset = load_dataset(dataset_key, fast=fast)
        schedules = [(str(beta), ConstantBeta(beta)) for beta in betas]
        schedules.append(("annealed", default_annealing(fast)))
        for label, schedule in schedules:
            model = build_model(
                "VSAN", dataset, seed=seed, fast=fast, annealing=schedule
            )
            fit_model(model, dataset, fast=fast, seed=seed, sweep=True)
            values = evaluate_recommender(
                model, dataset.split.test
            ).as_percentages()
            result.rows.append(
                [dataset_key, label, values["ndcg@20"], values["recall@20"]]
            )
    return result
