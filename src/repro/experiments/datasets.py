"""Standard experiment datasets (the scaled Beauty-like / ML1M-like
pairs) with process-level caching so the table/figure runners and
benchmarks share one generation + preprocessing pass.

``fast=True`` shrinks users/held-out counts so a full table regenerates
in seconds — used by default in the benchmark suite (set
``REPRO_FULL=1`` for the full scale).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data import (
    BEAUTY_LIKE,
    ML1M_LIKE,
    SequenceCorpus,
    StrongGeneralizationSplit,
    generate,
    prepare_corpus,
    split_strong_generalization,
)
from ..data.synthetic import SyntheticConfig
from ..tensor.random import make_rng

__all__ = ["DatasetSpec", "LoadedDataset", "BEAUTY", "ML1M", "DATASETS",
           "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset plus the paper's per-dataset protocol constants."""

    key: str
    config: SyntheticConfig
    max_length: int
    num_heldout: int
    generation_seed: int = 11
    split_seed: int = 7


@dataclass
class LoadedDataset:
    """Generated, preprocessed, and split — ready for model fitting."""

    spec: DatasetSpec
    corpus: SequenceCorpus
    split: StrongGeneralizationSplit

    @property
    def key(self) -> str:
        return self.spec.key

    @property
    def num_items(self) -> int:
        return self.corpus.num_items

    @property
    def max_length(self) -> int:
        return self.spec.max_length


# n is 50/200 in the paper; both synthetic sets have shorter histories so
# the window scales with them (still covering the longest sequences).
BEAUTY = DatasetSpec(
    key="beauty", config=BEAUTY_LIKE, max_length=30, num_heldout=100
)
ML1M = DatasetSpec(
    key="ml1m", config=ML1M_LIKE, max_length=60, num_heldout=50
)

DATASETS: dict[str, DatasetSpec] = {spec.key: spec for spec in (BEAUTY, ML1M)}

_CACHE: dict[tuple[str, bool], LoadedDataset] = {}


def _fast_spec(spec: DatasetSpec) -> DatasetSpec:
    return DatasetSpec(
        key=spec.key,
        config=spec.config.scaled(0.35),
        max_length=spec.max_length,
        num_heldout=max(12, spec.num_heldout // 4),
        generation_seed=spec.generation_seed,
        split_seed=spec.split_seed,
    )


def load_dataset(key: str, fast: bool = False) -> LoadedDataset:
    """Build (or fetch from cache) one of the standard datasets."""
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {key!r}; have {sorted(DATASETS)}")
    cache_key = (key, fast)
    if cache_key not in _CACHE:
        spec = _fast_spec(DATASETS[key]) if fast else DATASETS[key]
        log = generate(spec.config, seed=spec.generation_seed)
        corpus = prepare_corpus(log)
        split = split_strong_generalization(
            corpus, spec.num_heldout, rng=make_rng(spec.split_seed)
        )
        _CACHE[cache_key] = LoadedDataset(
            spec=spec, corpus=corpus, split=split
        )
    return _CACHE[cache_key]
