"""High-throughput inference engine for the serving hot path.

PR 1 made the *training* substrate fast (fused kernels, float32); this
module applies the same bench-gated playbook to *serving*.  Three pieces
compose into :class:`InferenceEngine`, which slots in anywhere a
``score_batch(histories)`` recommender is expected (so the whole
breaker/retry/deadline machinery of :class:`repro.serve.RecommendService`
works on top of it unchanged):

- **No-tape, last-position forwards** — every model call runs under
  :class:`repro.tensor.no_grad` (serving allocates no autodiff tape) and
  the neural models' ``forward_last`` fast path slices the hidden state
  to the final position *before* the item-vocabulary GEMM, so candidate
  scoring costs O(|I|) instead of O(L·|I|) per request.
- **:class:`MicroBatcher`** — coalesces queued scoring requests into
  padded batched forwards of up to ``max_batch`` rows.  Flush order is
  deterministic (FIFO submission order, chunked at ``max_batch``), and a
  flush is *due* once the queue is full or the oldest ticket has waited
  ``max_delay`` seconds, so latency stays bounded under light load.
- **:class:`ScoreCache`** — an LRU of finite score entries keyed on
  ``(model version, most-recent-window suffix)``.  Two users whose
  histories agree on the model's attention window share one entry; a
  model hot-swap bumps the version, which invalidates every old entry
  at once (see :meth:`InferenceEngine.set_model`).  Entries are either
  full-width rows or narrow :class:`repro.retrieval.TopScores` packs,
  and eviction honours an optional **byte budget**
  (``cache_capacity_bytes``) on top of the entry count — at 100k items
  a narrow entry is ~768 bytes against ~400 KB for a full row, so the
  same memory holds ~500× more users.

When approximate retrieval is configured (``EngineConfig(index=...)``)
and ``narrow`` is on (the default), the engine serves the candidate-
native contract end to end: ``score_batch`` returns a ``TopScores``
batch, the micro-batcher fans narrow rows out to tickets, the cache
stores the packed pairs, and :class:`repro.serve.RecommendService`
ranks straight from the candidate list — the full-width ``-inf`` row is
never materialized on the hot path.  ``narrow=False`` (or exact mode,
or a model without retrieval hooks) keeps the legacy full-width rows.

Equivalence is pinned bitwise: for a row-deterministic BLAS the batched
engine returns exactly the scores of one-at-a-time ``score_batch`` calls
(``tests/serve/test_engine.py`` enforces this across ragged lengths,
duplicate users, and fault-driven degradation).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..retrieval import IndexConfig, RetrievalEngine, TopScores
from ..tensor import no_grad

__all__ = ["EngineConfig", "InferenceEngine", "MicroBatcher", "ScoreCache"]


def _cacheable(entry) -> bool:
    """Whether a score entry may enter the cache.

    NaN or +inf marks a degraded forward (the same poison
    ``rank_items_batch`` rejects) — a transient burst must not become a
    sticky entry that re-fails every hit.  ``-inf`` is the legitimate
    "item excluded" sentinel (the padding slot always carries it, and
    approximate retrieval masks every non-candidate with it), so
    entries containing it cache normally.  Narrow
    :class:`~repro.retrieval.TopScores` entries apply the same rule to
    their real candidate slots (``-1`` padding carries ``-inf`` by
    contract and is skipped).
    """
    if isinstance(entry, TopScores):
        real = entry.scores[entry.ids >= 1]
        return not (np.isnan(real).any() or np.isposinf(real).any())
    rest = entry[1:]
    return not (np.isnan(rest).any() or np.isposinf(rest).any())


@dataclass
class EngineConfig:
    """Tuning knobs for :class:`InferenceEngine`.

    Args:
        max_batch: most requests coalesced into one padded forward.
            Bigger batches amortize per-call overhead and turn many thin
            GEMVs into one fat GEMM, at the cost of per-request latency
            while the batch fills; 8–32 is the useful range here.
        cache_capacity: LRU entries held by the :class:`ScoreCache`
            (``0`` disables caching entirely).
        cache_capacity_bytes: optional byte budget for the cache on top
            of the entry count — eviction runs until both limits hold.
            The knob that matters at catalogue scale: full-width rows
            cost ``(num_items + 1) * 4`` bytes each (~1.6 GB for the
            default 4096 entries at 100k items), narrow entries ~12
            bytes per candidate (~3 MB for the same 4096 entries at
            C=64).  ``None`` leaves bytes uncapped.
        max_delay: seconds the oldest queued request may wait before a
            flush is *due* (``0`` = a flush is due as soon as anything is
            queued; only streaming callers that poll
            :meth:`MicroBatcher.due` feel this knob).
        index: approximate-retrieval configuration
            (:class:`repro.retrieval.IndexConfig`).  ``None`` keeps
            dense scoring; set it to route ``score_batch`` through the
            two-stage IVF retrieve + exact re-rank path.  Models without
            retrieval hooks fall back to dense scoring silently (the
            fallback is visible in :meth:`InferenceEngine.snapshot`).
        narrow: serve the candidate-native contract
            (:class:`repro.retrieval.TopScores`) when approximate
            retrieval is active — ``score_batch`` returns packed
            ids/scores, the cache stores narrow entries, and the
            service ranks from the candidate list.  ``False`` restores
            the legacy full-width scattered rows (the equivalence
            reference).  Ignored without an ``index`` (dense models
            always serve full rows) and in exact mode.
        compile: route the wrapped neural model's scoring forwards
            through the trace-and-replay compiled path
            (:mod:`repro.tensor.compile`): the first flush of each batch
            shape traces a no-grad program, later flushes replay it over
            the preallocated buffer arena.  ``False`` forces eager
            forwards (the ``--no-compile`` CLI flag); non-neural models
            ignore the knob.
    """

    max_batch: int = 32
    cache_capacity: int = 4096
    cache_capacity_bytes: int | None = None
    max_delay: float = 0.0
    index: IndexConfig | None = None
    narrow: bool = True
    compile: bool = True

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be >= 0")
        if (
            self.cache_capacity_bytes is not None
            and self.cache_capacity_bytes < 1
        ):
            raise ValueError(
                "cache_capacity_bytes must be >= 1 (or None for no "
                "byte cap)"
            )
        if self.max_delay < 0:
            raise ValueError("max_delay must be >= 0")


class ScoreCache:
    """LRU cache of per-request score entries with full accounting.

    Keys are opaque (the engine uses ``(model_version, suffix bytes)``);
    values are 1-D full-width score rows or narrow
    :class:`~repro.retrieval.TopScores` packs.  Eviction enforces an
    entry-count cap and, when ``capacity_bytes`` is set, a byte budget
    (``bytes`` tracks the exact payload held) — the budget is what lets
    a catalogue-scale cache be sized in memory rather than entries,
    where one full-width row costs as much as ~500 narrow ones.
    ``hits`` / ``misses`` / ``evictions`` / ``invalidations`` are
    monotone counters surfaced through :meth:`snapshot` into
    :class:`repro.serve.ServiceStats`.
    """

    def __init__(
        self, capacity: int = 4096, capacity_bytes: int | None = None
    ):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ValueError(
                "capacity_bytes must be >= 1 (or None for no byte cap)"
            )
        self.capacity = capacity
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[object, object] = OrderedDict()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        """Membership peek that moves nothing and counts nothing (used
        by prefetch, which must not inflate the hit/miss counters)."""
        return key in self._entries

    @staticmethod
    def _clone(entry):
        if isinstance(entry, TopScores):
            return entry.copy()
        return np.array(entry, copy=True)

    def get(self, key):
        """The cached entry for ``key`` (marked most-recently-used), or
        ``None``.  Returns a copy so callers can never poison the cache."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return self._clone(entry)

    def put(self, key, entry) -> None:
        """Insert or **refresh** the entry for ``key``.

        A re-put of an existing key replaces the stored payload (and its
        byte accounting) — the scenario is a row recomputed around a
        ``set_model``-adjacent race, where keeping the stale array would
        serve old scores for as long as the entry stays hot.
        """
        if self.capacity == 0:
            return
        stored = self._clone(entry)
        size = stored.nbytes
        if self.capacity_bytes is not None and size > self.capacity_bytes:
            # One entry over the whole budget would evict everything and
            # still violate it; refuse admission instead.
            return
        previous = self._entries.pop(key, None)
        if previous is not None:
            self.bytes -= previous.nbytes
        self._entries[key] = stored
        self.bytes += size
        while len(self._entries) > self.capacity or (
            self.capacity_bytes is not None
            and self.bytes > self.capacity_bytes
        ):
            _, evicted = self._entries.popitem(last=False)
            self.bytes -= evicted.nbytes
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counted as one invalidation event)."""
        self.invalidations += 1
        self._entries.clear()
        self.bytes = 0

    def snapshot(self) -> dict:
        total = self.hits + self.misses
        size = len(self._entries)
        return {
            "size": size,
            "capacity": self.capacity,
            "capacity_bytes": self.capacity_bytes,
            "bytes": self.bytes,
            "bytes_per_entry": round(self.bytes / size, 1) if size else 0.0,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
        }


class _Ticket:
    """One queued scoring request; resolved by a batcher flush."""

    __slots__ = ("history", "enqueued", "_scores", "_error", "_done")

    def __init__(self, history: np.ndarray, enqueued: float):
        self.history = history
        self.enqueued = enqueued
        self._scores: np.ndarray | None = None
        self._error: Exception | None = None
        self._done = False

    def done(self) -> bool:
        return self._done

    def scores(self) -> np.ndarray:
        """The resolved score row; raises the model's error if the flush
        that carried this ticket failed."""
        if not self._done:
            raise RuntimeError("ticket not resolved; flush the batcher")
        if self._error is not None:
            raise self._error
        return self._scores


class MicroBatcher:
    """Coalesce queued scoring requests into batched forwards.

    Args:
        score_batch: the underlying scorer (one padded batched forward):
            ``callable(list[np.ndarray])`` returning ``(n, num_items+1)``
            full-width rows or an ``n``-row narrow
            :class:`~repro.retrieval.TopScores` batch, fanned out to
            tickets as row views either way.
        max_batch: flush chunk size; reaching it triggers an auto-flush.
        max_delay: seconds before a waiting ticket makes a flush *due*.
        clock: monotonic time source (injectable for tests).

    Determinism: tickets resolve in FIFO submission order, chunked at
    ``max_batch``; a chunk whose scorer raises fails *all* its tickets
    with that error (each request then falls through the service's
    normal retry/fallback machinery individually).
    """

    def __init__(
        self,
        score_batch,
        max_batch: int = 32,
        max_delay: float = 0.0,
        clock=time.monotonic,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._score_batch = score_batch
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._clock = clock
        self._queue: list[_Ticket] = []
        self.flushes = 0
        self.batched_requests = 0
        self.largest_flush = 0

    def __len__(self) -> int:
        return len(self._queue)

    def submit(self, history: np.ndarray) -> _Ticket:
        """Queue one request; auto-flushes when the batch is full."""
        ticket = _Ticket(np.asarray(history, dtype=np.int64), self._clock())
        self._queue.append(ticket)
        if len(self._queue) >= self.max_batch:
            self.flush()
        return ticket

    def due(self) -> bool:
        """True when a flush should run now: the queue is full, or the
        oldest ticket has waited at least ``max_delay`` seconds."""
        if not self._queue:
            return False
        if len(self._queue) >= self.max_batch:
            return True
        return self._clock() - self._queue[0].enqueued >= self.max_delay

    def flush(self) -> int:
        """Drain the queue in FIFO ``max_batch`` chunks; returns how many
        tickets were resolved."""
        resolved = 0
        while self._queue:
            chunk = self._queue[: self.max_batch]
            del self._queue[: len(chunk)]
            self.flushes += 1
            self.batched_requests += len(chunk)
            self.largest_flush = max(self.largest_flush, len(chunk))
            try:
                scores = self._score_batch(
                    [ticket.history for ticket in chunk]
                )
            except Exception as error:  # noqa: BLE001 — fault isolation
                for ticket in chunk:
                    ticket._error = error
                    ticket._done = True
            else:
                narrow = isinstance(scores, TopScores)
                if not narrow:
                    scores = np.asarray(scores)
                if len(scores) != len(chunk):
                    mismatch = ValueError(
                        f"scorer returned {len(scores)} rows for a "
                        f"{len(chunk)}-request chunk"
                    )
                    for ticket in chunk:
                        ticket._error = mismatch
                        ticket._done = True
                elif narrow:
                    for position, ticket in enumerate(chunk):
                        ticket._scores = scores.row(position)
                        ticket._done = True
                else:
                    for ticket, row in zip(chunk, scores):
                        ticket._scores = row
                        ticket._done = True
            resolved += len(chunk)
        return resolved

    def snapshot(self) -> dict:
        return {
            "max_batch": self.max_batch,
            "flushes": self.flushes,
            "batched_requests": self.batched_requests,
            "largest_flush": self.largest_flush,
            "queued": len(self._queue),
            "mean_flush_size": (
                round(self.batched_requests / self.flushes, 3)
                if self.flushes else 0.0
            ),
        }


class InferenceEngine:
    """Batching, caching, no-tape front-end for one recommender.

    Drop-in for the model slot of a :class:`RecommendService` rung: it
    exposes ``score_batch`` (and ``score``/``score_last``), so breakers,
    retries, and deadlines compose with batching unchanged.

    Args:
        model: anything with ``score_batch(histories)``.  Neural models
            additionally get their ``forward_last`` fast path and
            preallocated padded buffer through their own ``score_batch``.
        config: :class:`EngineConfig` knobs.
        clock: monotonic time source for the batcher.
    """

    def __init__(self, model, config: EngineConfig | None = None,
                 clock=time.monotonic):
        self.config = config or EngineConfig()
        self._model = model
        self._apply_compile()
        self.model_version = 0
        self._retrieval: RetrievalEngine | None = None
        self._retrieval_unsupported = False
        self.dense_fallbacks = 0
        self.cache = (
            ScoreCache(
                self.config.cache_capacity,
                capacity_bytes=self.config.cache_capacity_bytes,
            )
            if self.config.cache_capacity else None
        )
        self.batcher = MicroBatcher(
            self._score_chunk,
            max_batch=self.config.max_batch,
            max_delay=self.config.max_delay,
            clock=clock,
        )

    # ------------------------------------------------------------------
    # Model management (cache-invalidation rule lives here)
    # ------------------------------------------------------------------
    def _apply_compile(self) -> None:
        """Push the ``compile`` knob onto the wrapped model (neural
        models read ``compile_scoring`` in their ``score_batch``)."""
        if hasattr(self._model, "compile_scoring"):
            self._model.compile_scoring = self.config.compile

    @property
    def model(self):
        return self._model

    @property
    def name(self) -> str:
        inner = getattr(self._model, "name", type(self._model).__name__)
        return f"engine({inner})"

    def set_model(self, model) -> None:
        """Swap the wrapped model and invalidate every cached score.

        The invalidation rule on reload: the version in every cache key
        is bumped (so stale entries can never be served) *and* the cache
        is cleared eagerly (so their memory is released now, not via
        LRU churn).  The retrieval index refreshes **incrementally**:
        :meth:`repro.retrieval.RetrievalEngine.refresh` reassigns only
        the changed item vectors to their nearest existing centroids
        (escalating to a full rebuild past the staleness threshold), so
        a hot-swap costs an m-row assignment instead of a k-means run —
        candidate re-scoring always uses the *new* model's output head,
        so stale geometry can cost candidate recall but never score
        correctness.  A structurally incompatible swap (different item
        count or bias layout, or no retrieval hooks) drops the index and
        rebuilds lazily on the next scored request, exactly as before.
        """
        if self._retrieval is not None:
            try:
                self._retrieval.refresh(model)
            except ValueError:
                self._retrieval = None
        self._model = model
        self._apply_compile()
        self.model_version += 1
        self._retrieval_unsupported = False
        if self.cache is not None:
            self.cache.clear()

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _key(self, history: np.ndarray):
        """Cache key: model version + the suffix the model can see.

        Truncating to ``max_length`` first means any two histories that
        agree on the model's attention window share an entry.
        """
        window = getattr(self._model, "max_length", None)
        if window is not None and len(history) > window:
            history = history[-window:]
        return (self.model_version, history.tobytes())

    def _ensure_retrieval(self) -> RetrievalEngine | None:
        """The retrieval engine for the current model, built lazily.

        Returns ``None`` (and remembers it until the next
        :meth:`set_model`) when no index is configured or the wrapped
        model lacks the retrieval hooks — dense scoring then serves.
        """
        if self.config.index is None or self._retrieval_unsupported:
            return None
        if self._retrieval is None:
            if not getattr(self._model, "supports_retrieval", False):
                self._retrieval_unsupported = True
                return None
            with no_grad():
                self._retrieval = RetrievalEngine(
                    self._model, self.config.index
                )
        return self._retrieval

    def _score_chunk(self, histories: list[np.ndarray]):
        """One batched forward, guaranteed tape-free.

        Returns a narrow :class:`~repro.retrieval.TopScores` batch on
        the candidate-native path (approximate retrieval with
        ``narrow=True``), full-width rows everywhere else — exact mode
        re-scores the whole catalogue anyway, so there is nothing
        narrow to return.
        """
        retrieval = self._ensure_retrieval()
        with no_grad():
            if retrieval is not None:
                if self.config.narrow and not retrieval.exact:
                    return retrieval.score_topk(histories)
                return retrieval.score_batch(histories)
            return self._model.score_batch(histories)

    def score(self, history: np.ndarray) -> np.ndarray:
        return self.score_batch([history])[0]

    def score_last(self, histories: list[np.ndarray]) -> np.ndarray:
        return self.score_batch(histories)

    def score_batch(self, histories: list[np.ndarray]):
        """Scores for every history — served from cache where possible,
        micro-batched forwards for the misses, reassembled in order.

        On the candidate-native path the result is one narrow
        :class:`~repro.retrieval.TopScores` batch; otherwise a
        ``(n, num_items + 1)`` full-width matrix.  A single call never
        mixes the two: the serving mode is fixed by config + model, and
        a model swap that changes it also bumps the cache version, so
        stale entries of the other shape are unreachable.

        Raises the underlying model's error if a needed chunk failed
        (cached requests are unaffected; the caller's retry/fallback
        logic sees exactly what it would see calling the model directly).
        """
        histories = [
            np.asarray(history, dtype=np.int64) for history in histories
        ]
        results: list = [None] * len(histories)
        pending: list[tuple[int, object, _Ticket]] = []
        for index, history in enumerate(histories):
            key = self._key(history)
            if self.cache is not None:
                row = self.cache.get(key)
                if row is not None:
                    results[index] = row
                    continue
            pending.append((index, key, self.batcher.submit(history)))
        if pending:
            self.batcher.flush()
        for index, key, ticket in pending:
            row = ticket.scores()
            if self.cache is not None and _cacheable(row):
                self.cache.put(key, row)
            results[index] = row
        if results and isinstance(results[0], TopScores):
            return TopScores.stack(results)
        return np.stack(results)

    def score_batch_dense(self, histories: list[np.ndarray]) -> np.ndarray:
        """Full-width rows straight from the wrapped model — the escape
        hatch for callers the narrow contract cannot serve (a request
        whose exclusions swallow every retrieved candidate).  Bypasses
        the cache and batcher: dense rows at catalogue scale are exactly
        the allocations the narrow path exists to avoid, so they must
        not displace narrow entries, and fallbacks are rare enough that
        coalescing them buys nothing.  Counted in ``dense_fallbacks``.
        """
        self.dense_fallbacks += len(histories)
        histories = [
            np.asarray(history, dtype=np.int64) for history in histories
        ]
        with no_grad():
            return np.asarray(self._model.score_batch(histories))

    def prefetch(self, histories: list[np.ndarray]) -> int:
        """Warm the cache with one coalesced pass over ``histories``.

        Returns how many rows were freshly cached.  Model failures are
        swallowed per chunk (each request will surface them individually
        through the normal serving path) and the cache counters are left
        untouched — only real request traffic moves hit/miss stats.
        No-op when caching is disabled: without a cache there is nowhere
        to scatter the batch to.
        """
        if self.cache is None:
            return 0
        pending: list[tuple[object, _Ticket]] = []
        seen: set = set()
        for history in histories:
            history = np.asarray(history, dtype=np.int64)
            key = self._key(history)
            if key in self.cache or key in seen:
                continue
            seen.add(key)
            pending.append((key, self.batcher.submit(history)))
        self.batcher.flush()
        warmed = 0
        for key, ticket in pending:
            try:
                row = ticket.scores()
            except Exception:  # noqa: BLE001 — warming is best-effort
                continue
            if _cacheable(row):
                self.cache.put(key, row)
                warmed += 1
        return warmed

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "model": getattr(
                self._model, "name", type(self._model).__name__
            ),
            "model_version": self.model_version,
            "narrow": self.config.narrow,
            "dense_fallbacks": self.dense_fallbacks,
            "cache": (
                self.cache.snapshot() if self.cache is not None else None
            ),
            "batcher": self.batcher.snapshot(),
            "retrieval": (
                self._retrieval.snapshot()
                if self._retrieval is not None
                else None
            ),
        }
