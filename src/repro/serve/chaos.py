"""Seeded chaos harness for the self-healing serving cluster.

:func:`run_chaos` drives a :class:`~repro.serve.cluster.ServingCluster`
through paced open-loop traffic while firing a **seeded fault
schedule** (from :func:`repro.data.synthetic.chaos_schedule`) at it —
replica SIGKILLs, whole-group blackouts, and stall injections that
wedge a worker without killing it — and continuously checks the
invariants the self-healing story promises:

- the cluster-level accounting invariant ``accounted()`` holds at
  every checkpoint, after the drain, and after a final probe wave;
- the merged cross-worker ``ServiceStats`` satisfies the same
  single-process ``accounted()`` invariant;
- the cluster ends the run **recovered**: every killed worker has been
  respawned, every shard owns ring arcs again, and every shard
  actually serves a control round-trip.

The harness never decides faults itself: the schedule is a pure
function of ``(ChaosScheduleConfig, seed)``, and targets are resolved
rank-modulo-topology at fire time, so one printed seed replays the
whole drill.  Faults only fire at shards with a **full replica group**
that have not been faulted within a cooldown window (a stalled worker
is invisible to ``replica_count`` until the stall probe catches it, so
back-to-back faults on one shard could silently wedge *both*
replicas); a fault with no safe target is deferred to the next
request rather than dropped.  That discipline is what makes "a
replicated shard loses zero requests to a single fault" an assertable
property rather than a coin flip.

The report carries the recovery metrics the ``bench-cluster`` gate
bounds: per-death time-to-respawn spans and the goodput dip depth
(how far the worst inter-checkpoint completion window fell below the
mean one).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..pool import WorkerError
from .errors import ClusterError

__all__ = ["ChaosConfig", "run_chaos"]


@dataclass
class ChaosConfig:
    """Knobs for one chaos drill.

    Args:
        stall_seconds: how long an injected stall wedges its worker —
            set it well above the cluster's ``stall_timeout`` so the
            probe, not patience, ends the stall.
        checkpoint_every: submissions between accounting checkpoints
            (each also snapshots completed-counts for goodput windows).
        pace: replay arrivals on their schedule (the honest mode); off,
            the replay runs as fast as possible (benchmark mode).
        drain_timeout: budget for the post-replay drain.
        recovery_timeout: how long to wait after the drain for the
            supervisor to restore full capacity.
        probe_requests: requests replayed after recovery to prove the
            healed cluster still serves.
        fault_cooldown: seconds a shard stays off-limits after a fault
            lands on it.  ``None`` derives it from the cluster's
            ``stall_timeout`` (1.5x, the window in which a wedged
            replica can hide from ``replica_count``).
    """

    stall_seconds: float = 0.8
    checkpoint_every: int = 25
    pace: bool = True
    drain_timeout: float = 20.0
    recovery_timeout: float = 15.0
    probe_requests: int = 24
    fault_cooldown: float | None = None

    def __post_init__(self):
        if self.stall_seconds <= 0:
            raise ValueError("stall_seconds must be positive")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.drain_timeout <= 0 or self.recovery_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if self.probe_requests < 0:
            raise ValueError("probe_requests must be >= 0")
        if self.fault_cooldown is not None and self.fault_cooldown < 0:
            raise ValueError("fault_cooldown must be >= 0")


def _target_shard(cluster, rank: int, hot: dict, now: float):
    """Resolve a schedule rank onto a *safe* shard: full replica group
    and outside its fault cooldown.  Returns ``None`` (defer the
    fault) when no shard qualifies — firing anyway could wedge both
    replicas of a shard whose first stall the probe hasn't caught
    yet, turning an assertable zero-loss fault into a blackout."""
    safe = [
        shard for shard in cluster.live_shards
        if cluster.replica_count(shard)
        >= cluster.config.replicas_per_shard
        and now >= hot.get(shard, -1.0)
    ]
    if not safe:
        return None
    return safe[rank % len(safe)]


def _apply_fault(
    cluster, kind: str, rank: int, config: ChaosConfig,
    hot: dict, now: float, cooldown: float,
) -> dict | None:
    """Fire one fault at a safe shard; ``None`` means defer (retry on
    the next request — no shard is currently safe to fault)."""
    shard = _target_shard(cluster, rank, hot, now)
    if shard is None:
        return None
    hot[shard] = now + cooldown
    try:
        if kind == "kill":
            worker = cluster.kill_replica(shard, which=rank)
        elif kind == "blackout":
            cluster.kill_shard(shard)
            worker = None
        elif kind == "stall":
            worker = cluster.stall_replica(
                shard, config.stall_seconds, which=rank
            )
        else:  # pragma: no cover - schedule generator guards kinds
            raise ValueError(f"unknown fault kind {kind!r}")
    except (ClusterError, WorkerError):
        # The rank landed on a worker that died under our feet — the
        # race itself is the exercise; record and move on.
        return {"kind": kind, "shard": shard, "skipped": True}
    return {"kind": kind, "shard": shard, "worker": worker}


def _check(cluster, where: str) -> None:
    if not cluster.accounted():
        raise ClusterError(
            f"cluster accounting violated {where}: "
            f"submitted={cluster.submitted} completed={cluster.completed} "
            f"shed={cluster.shed} failed={cluster.failed} "
            f"inflight={cluster.inflight}"
        )


def run_chaos(
    cluster,
    traffic,
    schedule,
    config: ChaosConfig | None = None,
    sleep=time.sleep,
    log=None,
) -> dict:
    """Drive one seeded chaos drill; returns the report dict.

    ``traffic`` is an iterable of ``(user, history, arrival_seconds)``
    (e.g. :func:`repro.data.synthetic.zipf_traffic`); ``schedule`` is
    the sorted ``(request_index, kind, rank)`` list from
    :func:`repro.data.synthetic.chaos_schedule`.  Raises
    :class:`ClusterError` the moment an accounting invariant breaks —
    checkpoint asserts are continuous, not post-hoc.
    """
    config = config or ChaosConfig()
    traffic = list(traffic)
    schedule = sorted(schedule)
    cooldown = config.fault_cooldown
    if cooldown is None:
        cooldown = 1.5 * (cluster.config.stall_timeout or 0.0)
    cursor = 0
    due: list[tuple] = []  # faults past their index awaiting a target
    hot: dict[int, float] = {}  # shard -> earliest safe re-fault time
    faults: list[dict] = []
    checkpoints: list[dict] = []
    started = time.monotonic()

    def fire_due(index) -> None:
        still_due = []
        for entry in due:
            _, kind, rank = entry
            fault = _apply_fault(
                cluster, kind, rank, config, hot,
                time.monotonic(), cooldown,
            )
            if fault is None:
                still_due.append(entry)
                continue
            faults.append(fault)
            if log:
                log(
                    f"chaos: {kind} on shard {fault['shard']} "
                    f"at request {index}"
                    + (" (skipped)" if fault.get("skipped") else "")
                )
        due[:] = still_due

    for index, (user, history, arrival) in enumerate(traffic):
        while cursor < len(schedule) and schedule[cursor][0] <= index:
            due.append(schedule[cursor])
            cursor += 1
        if due:
            fire_due(index)
        if config.pace:
            while True:
                lag = arrival - (time.monotonic() - started)
                if lag <= 0:
                    break
                sleep(min(lag, 0.02))
                cluster.pump(timeout=0.0)
        cluster.submit(user, history)
        cluster.pump(timeout=0.0)
        if (index + 1) % config.checkpoint_every == 0:
            _check(cluster, f"at checkpoint (request {index + 1})")
            checkpoints.append({
                "requests": index + 1,
                "completed": cluster.completed,
                "t": time.monotonic() - started,
            })
    # Flush deferred faults: keep pumping (so respawns land and shards
    # become safe again) until every scheduled fault has fired or the
    # recovery budget runs out.  Anything left is recorded skipped.
    flush_deadline = time.monotonic() + config.recovery_timeout
    while due and time.monotonic() < flush_deadline:
        cluster.pump(timeout=0.02)
        fire_due(len(traffic))
    for _, kind, rank in due:
        faults.append({"kind": kind, "shard": None, "skipped": True})
        if log:
            log(f"chaos: {kind} (rank {rank}) never found a safe "
                f"target — skipped")
    due.clear()
    cluster.drain(timeout=config.drain_timeout)
    _check(cluster, "after drain")
    if cluster.inflight:
        raise ClusterError(
            f"drain left {cluster.inflight} requests non-terminal"
        )
    # Let the supervisor finish healing: respawn backoffs may still be
    # pending after the drain settles the data plane.
    deadline = time.monotonic() + config.recovery_timeout
    while not cluster.full_capacity() and time.monotonic() < deadline:
        cluster.pump(timeout=0.05)
    recovered = cluster.full_capacity()
    # Prove the healed cluster serves: a control round-trip per shard
    # and a probe wave through the data plane.
    serving_shards = []
    if recovered:
        serving_shards = sorted(cluster.describe().keys())
        probe_before = cluster.completed
        for user, history, _ in traffic[: config.probe_requests]:
            cluster.submit(user, history)
            cluster.pump(timeout=0.0)
        cluster.drain(timeout=config.drain_timeout)
        probe_completed = cluster.completed - probe_before
        _check(cluster, "after probe wave")
    else:
        probe_completed = 0
    merged = cluster.merged_service_stats()
    if not merged.accounted():
        raise ClusterError(
            "merged ServiceStats accounting violated after chaos drill"
        )
    windows = [
        later["completed"] - earlier["completed"]
        for earlier, later in zip(checkpoints, checkpoints[1:])
    ]
    if windows:
        mean_window = sum(windows) / len(windows)
        min_window = min(windows)
        dip_depth = (
            0.0 if mean_window == 0
            else 1.0 - min_window / mean_window
        )
        goodput = {
            "min_window": min_window,
            "mean_window": round(mean_window, 2),
            "dip_depth": round(dip_depth, 4),
        }
    else:
        goodput = {"min_window": None, "mean_window": None,
                   "dip_depth": None}
    spans = cluster.recovery_spans()
    offered = len(traffic)
    return {
        "offered": offered,
        "wall_seconds": round(time.monotonic() - started, 4),
        "submitted": cluster.submitted,
        "completed": cluster.completed,
        "shed": cluster.shed,
        "failed": cluster.failed,
        "availability": (
            round((cluster.completed) / max(cluster.submitted, 1), 4)
        ),
        "slo_attainment": cluster.slo_attainment(),
        "faults": faults,
        "faults_applied": sum(
            1 for fault in faults if not fault.get("skipped")
        ),
        "checkpoints": len(checkpoints),
        "goodput": goodput,
        "recovered": recovered,
        "serving_shards": serving_shards,
        "probe_completed": probe_completed,
        "respawns": cluster.respawns,
        "recovery_spans": spans,
        "max_recovery_seconds": (
            round(max(span["seconds"] for span in spans), 4)
            if spans else 0.0
        ),
        "cluster_accounted": cluster.accounted(),
        "service_accounted": merged.accounted(),
    }
