"""Service observability: per-rung counters and latency summaries.

Everything here is plain bookkeeping — mutation happens in
:class:`repro.serve.RecommendService` — exposed as one JSON-friendly
``snapshot()`` so a smoke test (or a real metrics exporter) can assert
that every request is accounted for::

    requests == served + rejected + exhausted + deadline_exceeded
"""

from __future__ import annotations

from collections import Counter, deque

import numpy as np

__all__ = ["LatencyTracker", "RungStats", "ServiceStats"]


class LatencyTracker:
    """Bounded reservoir of recent latencies with percentile summaries."""

    def __init__(self, capacity: int = 1024):
        self._samples: deque[float] = deque(maxlen=capacity)

    def add(self, seconds: float) -> None:
        self._samples.append(float(seconds))

    def __len__(self) -> int:
        return len(self._samples)

    def merge(self, other: "LatencyTracker") -> None:
        """Pool another tracker's reservoir into this one.

        The capacity grows to hold both windows, so merging N shard
        trackers keeps every shard's retained samples — percentiles over
        the merged reservoir weight each shard by how much traffic it
        actually kept, same as a single-process tracker would have.
        """
        combined = list(self._samples) + list(other._samples)
        capacity = max(
            self._samples.maxlen or 0, other._samples.maxlen or 0,
            len(combined),
        )
        self._samples = deque(combined, maxlen=capacity)

    def fraction_under(self, seconds: float) -> float | None:
        """Fraction of retained samples at or under ``seconds`` —
        the SLO-attainment view of the reservoir (``None`` when no
        samples are retained)."""
        if not self._samples:
            return None
        values = np.asarray(self._samples, dtype=np.float64)
        return float(np.mean(values <= seconds))

    def summary(self) -> dict:
        """count/mean/p50/p95/p99/max over the retained window, in ms."""
        if not self._samples:
            return {"count": 0}
        values = np.asarray(self._samples, dtype=np.float64) * 1e3
        return {
            "count": len(values),
            "mean_ms": round(float(values.mean()), 3),
            "p50_ms": round(float(np.percentile(values, 50)), 3),
            "p95_ms": round(float(np.percentile(values, 95)), 3),
            "p99_ms": round(float(np.percentile(values, 99)), 3),
            "max_ms": round(float(values.max()), 3),
        }


class RungStats:
    """Counters for one rung of the fallback chain.

    ``attempts`` counts every scoring call (including retries);
    ``failures`` is broken down by cause (``error`` / ``timeout`` /
    ``non_finite``); ``short_circuited`` counts requests the breaker
    refused without calling the model.
    """

    def __init__(self):
        self.attempts = 0
        self.successes = 0
        self.failures: Counter[str] = Counter()
        self.short_circuited = 0
        self.latency = LatencyTracker()

    def merge(self, other: "RungStats") -> None:
        """Fold another process's counters for the same rung into this
        one (sums counters, pools the latency reservoir)."""
        self.attempts += other.attempts
        self.successes += other.successes
        self.failures.update(other.failures)
        self.short_circuited += other.short_circuited
        self.latency.merge(other.latency)

    def snapshot(self) -> dict:
        return {
            "attempts": self.attempts,
            "successes": self.successes,
            "failures": dict(self.failures),
            "short_circuited": self.short_circuited,
            "latency": self.latency.summary(),
        }


class ServiceStats:
    """Request-level accounting across the whole service."""

    def __init__(self, rung_names: list[str]):
        self.requests = 0
        self.rejected = 0
        self.exhausted = 0
        self.deadline_exceeded = 0
        self.served: Counter[str] = Counter()
        self.fallbacks = 0
        # Candidate-native accounting: requests ranked straight from a
        # narrow candidate list, vs. requests whose exclusions exhausted
        # the candidates and forced one dense full-width forward.
        self.narrow_ranked = 0
        self.dense_fallbacks = 0
        self.rungs = {name: RungStats() for name in rung_names}

    @property
    def total_served(self) -> int:
        return sum(self.served.values())

    def accounted(self) -> bool:
        """True when every request ended in exactly one outcome bucket."""
        return self.requests == (
            self.total_served
            + self.rejected
            + self.exhausted
            + self.deadline_exceeded
        )

    def merge(self, other: "ServiceStats") -> None:
        """Aggregate another process's stats into this one.

        Counters sum, per-rung stats merge rung-by-rung (rungs the
        other side has and this side doesn't are adopted), and latency
        reservoirs pool — so a cluster's merged snapshot satisfies the
        same :meth:`accounted` invariant as a single-process run.
        """
        self.requests += other.requests
        self.rejected += other.rejected
        self.exhausted += other.exhausted
        self.deadline_exceeded += other.deadline_exceeded
        self.served.update(other.served)
        self.fallbacks += other.fallbacks
        self.narrow_ranked += other.narrow_ranked
        self.dense_fallbacks += other.dense_fallbacks
        for name, rstats in other.rungs.items():
            if name in self.rungs:
                self.rungs[name].merge(rstats)
            else:
                self.rungs[name] = rstats

    def snapshot(
        self,
        breakers: dict[str, dict] | None = None,
        engines: dict[str, dict] | None = None,
    ) -> dict:
        """One JSON-friendly dict of everything (breaker states and
        engine cache/batcher stats merged in when the service passes
        them)."""
        rungs = {}
        for name, stats in self.rungs.items():
            entry = stats.snapshot()
            entry["served"] = self.served.get(name, 0)
            if breakers and name in breakers:
                entry["breaker"] = breakers[name]
            if engines and name in engines:
                entry["engine"] = engines[name]
            rungs[name] = entry
        return {
            "requests": self.requests,
            "served": self.total_served,
            "served_by_rung": dict(self.served),
            "rejected": self.rejected,
            "exhausted": self.exhausted,
            "deadline_exceeded": self.deadline_exceeded,
            "fallbacks": self.fallbacks,
            "narrow_ranked": self.narrow_ranked,
            "dense_fallbacks": self.dense_fallbacks,
            "accounted": self.accounted(),
            "rungs": rungs,
        }
