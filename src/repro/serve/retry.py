"""Retry with exponential backoff and jitter for transient failures.

The serving layer retries *in place* only for failures that are expected
to clear on their own — e.g. a checkpoint hot-reload swapping weights
mid-request — before falling through to the next rung.  Backoff is
exponential with equal jitter (half deterministic, half uniform-random)
so synchronized clients don't retry in lockstep; the random stream is
seeded and the sleep function injectable, keeping every test
deterministic and sleep-free.
"""

from __future__ import annotations

import time

import numpy as np

__all__ = ["RetryPolicy"]


class RetryPolicy:
    """Bounded retry schedule: ``max_attempts`` tries, backoff between.

    Args:
        max_attempts: total attempts including the first (1 = no retry).
        base_delay: backoff before the first retry, seconds.
        multiplier: exponential growth factor per retry.
        max_delay: cap on any single backoff.
        jitter: fraction of each delay drawn uniformly at random
            (``0`` = fully deterministic, ``1`` = full jitter).
        seed: seeds the jitter stream.
        sleep: injectable sleep function (tests pass a recorder).
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 1.0,
        jitter: float = 0.5,
        seed: int = 0,
        sleep=time.sleep,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if base_delay < 0 or max_delay < 0 or multiplier < 1.0:
            raise ValueError(
                "delays must be >= 0 and multiplier must be >= 1"
            )
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self._rng = np.random.default_rng(seed)
        self._sleep = sleep

    def backoff(self, retry_index: int) -> float:
        """Jittered delay before retry ``retry_index`` (0-based).

        The deterministic part is
        ``min(max_delay, base * multiplier**retry_index)``; a ``jitter``
        fraction of it is replaced by a uniform draw, so the result lies
        in ``[delay * (1 - jitter), delay]``.
        """
        delay = min(
            self.max_delay, self.base_delay * self.multiplier ** retry_index
        )
        if self.jitter == 0.0:
            return delay
        fixed = delay * (1.0 - self.jitter)
        return fixed + float(self._rng.uniform(0.0, delay * self.jitter))

    def pause(self, retry_index: int, limit: float | None = None) -> None:
        """Sleep the jittered backoff before retry ``retry_index``.

        ``limit`` caps the sleep (e.g. at a deadline's remaining
        budget) so a backoff can never overshoot the time the caller
        actually has left.
        """
        delay = self.backoff(retry_index)
        if limit is not None:
            delay = min(delay, limit)
        self._sleep(delay)

    def run(self, fn, retry_on: tuple[type, ...] = (Exception,)):
        """Call ``fn()`` up to ``max_attempts`` times.

        Only exceptions matching ``retry_on`` are retried; anything else
        propagates immediately, as does the final matching failure.
        """
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except retry_on:
                if attempt == self.max_attempts - 1:
                    raise
                self._sleep(self.backoff(attempt))
