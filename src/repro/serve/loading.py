"""Safe checkpoint loading for serving.

:func:`repro.nn.load_checkpoint` already turns corrupt/truncated files
into :class:`CheckpointError`; this module adds the *semantic* checks a
service must make before putting a model into the request path:

- every weight array must be finite — a checkpoint whose weights carry
  NaN/Inf would pass structural validation and then poison every score
  it produces;
- the rebuilt model must actually expose the scoring interface.

``retries`` makes the load robust to transient filesystem races (e.g. a
trainer hot-swapping the checkpoint between our existence check and the
read): :class:`CheckpointError` is retried with backoff before being
surfaced.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..nn.serialization import CheckpointError, load_checkpoint
from .retry import RetryPolicy

__all__ = ["safe_load_model", "validate_finite_state"]


def validate_finite_state(model, path: str | Path) -> None:
    """Raise :class:`CheckpointError` if any weight is NaN/Inf."""
    for name, array in model.state_dict().items():
        array = np.asarray(array)
        if not np.isfinite(array).all():
            bad = int((~np.isfinite(array)).sum())
            raise CheckpointError(
                f"checkpoint {path} has {bad} non-finite values in "
                f"weight {name!r}; refusing to serve it"
            )


def safe_load_model(
    path: str | Path,
    registry: dict[str, type],
    check_finite: bool = True,
    retries: RetryPolicy | None = None,
):
    """Load a model checkpoint fit for the request path.

    Args:
        path: ``.npz`` checkpoint written by
            :func:`repro.nn.save_checkpoint` with a config.
        registry: class-name → class mapping, as for ``load_checkpoint``.
        check_finite: reject NaN/Inf weights with
            :class:`CheckpointError`.
        retries: optional policy for transient load races; by default
            the load is attempted once.

    Returns:
        the rebuilt model, in eval mode.
    """

    def _load():
        model = load_checkpoint(path, registry=registry)
        if check_finite:
            validate_finite_state(model, path)
        return model

    if retries is not None:
        model = retries.run(_load, retry_on=(CheckpointError,))
    else:
        model = _load()
    if not callable(getattr(model, "score_batch", None)):
        raise CheckpointError(
            f"checkpoint {path} rebuilt a {type(model).__name__}, which "
            "does not implement score_batch"
        )
    if hasattr(model, "eval"):
        model.eval()
    return model
