"""Circuit breaker guarding one rung of the fallback chain.

Standard three-state design (closed → open → half-open → closed):

- **closed** — traffic flows; outcomes are recorded in a sliding window
  of the last ``window`` calls.  When at least ``min_calls`` outcomes
  are in the window and the failure rate reaches ``failure_threshold``,
  the breaker trips open.
- **open** — traffic is refused (``allow()`` is ``False``) for
  ``cooldown`` seconds, giving the rung time to recover (and sparing
  each request the latency of a known-bad model).
- **half-open** — after the cooldown, probe traffic is admitted.
  ``half_open_probes`` consecutive successes close the breaker and clear
  the window; a single failure re-opens it and restarts the cooldown.

The clock is injectable so tests (and the fault-injection harness) can
drive state transitions deterministically without real sleeping.
"""

from __future__ import annotations

import time
from collections import deque

__all__ = ["CLOSED", "OPEN", "HALF_OPEN", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-rate circuit breaker with cooldown and half-open probes.

    Args:
        failure_threshold: failure rate over the sliding window at which
            the breaker trips (``0 < threshold <= 1``).
        window: number of recent outcomes the rate is computed over.
        min_calls: outcomes required in the window before the rate is
            meaningful (prevents one early failure from tripping).
        cooldown: seconds the breaker stays open before probing.
        half_open_probes: consecutive half-open successes needed to
            close.
        clock: monotonic time source (injectable for determinism).
    """

    def __init__(
        self,
        failure_threshold: float = 0.5,
        window: int = 10,
        min_calls: int = 5,
        cooldown: float = 30.0,
        half_open_probes: int = 2,
        clock=time.monotonic,
    ):
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if window < 1 or min_calls < 1 or half_open_probes < 1:
            raise ValueError(
                "window, min_calls, and half_open_probes must be >= 1"
            )
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.failure_threshold = failure_threshold
        self.min_calls = min(min_calls, window)
        self.cooldown = cooldown
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._state = CLOSED
        self._opened_at = 0.0
        self._half_open_successes = 0
        self.times_opened = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, accounting for an elapsed cooldown."""
        self._maybe_half_open()
        return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = HALF_OPEN
            self._half_open_successes = 0

    def failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(not ok for ok in self._outcomes) / len(self._outcomes)

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether a call may proceed right now."""
        self._maybe_half_open()
        return self._state != OPEN

    def record_success(self) -> None:
        self._maybe_half_open()
        if self._state == HALF_OPEN:
            self._half_open_successes += 1
            if self._half_open_successes >= self.half_open_probes:
                self._close()
        else:
            self._outcomes.append(True)

    def record_failure(self) -> None:
        self._maybe_half_open()
        if self._state == HALF_OPEN:
            self._trip()
            return
        self._outcomes.append(False)
        if (
            self._state == CLOSED
            and len(self._outcomes) >= self.min_calls
            and self.failure_rate() >= self.failure_threshold
        ):
            self._trip()

    # ------------------------------------------------------------------
    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._half_open_successes = 0
        self._outcomes.clear()
        self.times_opened += 1

    def _close(self) -> None:
        self._state = CLOSED
        self._half_open_successes = 0
        self._outcomes.clear()

    def reset(self) -> None:
        """Force the breaker back to a pristine closed state."""
        self._close()

    def snapshot(self) -> dict:
        """JSON-friendly view for :meth:`RecommendService.stats`."""
        return {
            "state": self.state,
            "failure_rate": round(self.failure_rate(), 4),
            "window_size": len(self._outcomes),
            "times_opened": self.times_opened,
        }
