"""`RecommendService`: fault-tolerant top-N recommendation.

The service owns an ordered **fallback chain** of scoring rungs — e.g.
``VSAN → SASRec → POP`` — and guarantees that a valid request either
gets a *valid, finite ranking* from the highest healthy rung or a typed
error, never a silent garbage ranking:

1. **Validation** — histories are checked (1-D, non-empty, integer ids
   in ``1..num_items``), truncated to the most recent ``max_history``
   items, with unknown ids either rejected or dropped
   (:class:`InvalidRequest` is raised when nothing valid remains).
2. **Fallback chain** — each rung is guarded by a
   :class:`repro.serve.breaker.CircuitBreaker`.  A rung that raises,
   overruns the deadline, or emits NaN/``+inf`` scores records a breaker
   failure and traffic flows to the next rung; once its failure rate
   trips the breaker the rung is skipped outright until the cooldown
   elapses and half-open probes re-close it.
3. **Retries** — failures that subclass
   :class:`repro.serve.errors.TransientError` are retried in place with
   exponential backoff + jitter before falling through.
4. **Deadlines** — the budget is enforced *by detection*: a synchronous
   model call cannot be preempted, so any call that takes longer than
   the budget is counted as a ``timeout`` failure on that rung and
   traffic degrades to the next rung (a late-but-valid degraded answer
   beats no answer; the breaker is what protects latency over time by
   skipping a persistently slow rung).  The budget is **cumulative**
   across the whole request: every call is charged against what earlier
   rungs, retries, and backoffs left over, each retry backoff is capped
   at the remaining budget, and a retry is skipped outright when the
   remainder cannot cover ``base_delay``.  :class:`DeadlineExceeded` is
   raised only when *no* rung could answer and the budget was spent.
5. **Accounting** — :meth:`RecommendService.stats` snapshots per-rung
   attempts/failures/latencies and breaker states; every request lands
   in exactly one of served / rejected / exhausted / deadline buckets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..eval.metrics import (
    NonFiniteScoresError,
    rank_items_batch,
    rank_top_scores,
)
from ..retrieval import TopScores
from .breaker import CircuitBreaker
from .engine import EngineConfig, InferenceEngine
from .errors import (
    AllRungsFailed,
    DeadlineExceeded,
    InvalidRequest,
    ServeError,
    TransientError,
)
from .loading import safe_load_model
from .retry import RetryPolicy
from .stats import ServiceStats

__all__ = ["Recommendation", "RecommendService", "ServiceConfig"]

_UNSET = object()


@dataclass
class ServiceConfig:
    """Request-handling policy knobs.

    Args:
        top_n: default recommendation list length.
        deadline: default time budget in seconds (``None`` =
            unbounded).  Enforced by detection: a rung call that takes
            longer counts as a ``timeout`` failure and the chain
            degrades; :class:`DeadlineExceeded` is raised only when no
            rung answers and the budget is spent.
        max_history: histories longer than this are truncated to their
            most recent items (mirrors the models' attention windows).
        unknown_items: ``"reject"`` raises :class:`InvalidRequest` on
            out-of-vocabulary ids; ``"drop"`` silently filters them
            (rejecting only if nothing remains).
        exclude_history: remove already-seen items from rankings.
    """

    top_n: int = 10
    deadline: float | None = 0.25
    max_history: int = 200
    unknown_items: str = "reject"
    exclude_history: bool = True

    def __post_init__(self):
        if self.top_n < 1:
            raise ValueError("top_n must be >= 1")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if self.max_history < 1:
            raise ValueError("max_history must be >= 1")
        if self.unknown_items not in ("reject", "drop"):
            raise ValueError("unknown_items must be 'reject' or 'drop'")


@dataclass
class Recommendation:
    """A served ranking plus provenance.

    ``degraded`` is ``True`` whenever a rung below the primary answered;
    ``fallbacks`` counts the rungs that were skipped or failed first.
    """

    items: np.ndarray
    rung: str
    latency: float
    degraded: bool
    fallbacks: int


class _Rung:
    def __init__(self, name: str, model, breaker: CircuitBreaker):
        self.name = name
        self.model = model
        self.breaker = breaker

    @property
    def engine(self) -> InferenceEngine | None:
        """The rung's engine, when the service routes through one."""
        model = self.model
        return model if isinstance(model, InferenceEngine) else None


class RecommendService:
    """Serve top-N recommendations through a guarded fallback chain.

    Args:
        rungs: ordered ``(name, recommender)`` pairs, best model first;
            each recommender needs ``score_batch(histories)``.  The last
            rung should be something that cannot fail (e.g. ``POP``).
        num_items: vocabulary size; scores must be ``num_items + 1``
            wide (index 0 = padding).
        config: request policy (:class:`ServiceConfig`).
        retry: in-place retry policy for transient failures; default
            retries once with a 10 ms backoff.
        breaker_factory: builds one breaker per rung; defaults to
            :class:`CircuitBreaker` on the service clock.
        clock: monotonic time source (injectable for deterministic
            deadline/breaker tests).
        engine: route every rung through an
            :class:`repro.serve.engine.InferenceEngine` (micro-batching,
            LRU score cache, guaranteed no-tape forwards).  Pass an
            :class:`EngineConfig` to tune it, ``True`` for the defaults,
            or leave ``None`` for direct model calls.  Breakers, retries,
            and deadlines see the engine exactly like a model, so the
            fault machinery composes with batching unchanged.
    """

    def __init__(
        self,
        rungs,
        num_items: int,
        config: ServiceConfig | None = None,
        retry: RetryPolicy | None = None,
        breaker_factory=None,
        clock=time.monotonic,
        engine: EngineConfig | bool | None = None,
    ):
        rungs = list(rungs)
        if not rungs:
            raise ValueError("need at least one rung")
        names = [name for name, _ in rungs]
        if len(set(names)) != len(names):
            raise ValueError(f"rung names must be unique: {names}")
        if num_items < 1:
            raise ValueError("num_items must be >= 1")
        self.num_items = num_items
        self.config = config or ServiceConfig()
        self.retry = retry or RetryPolicy(
            max_attempts=2, base_delay=0.01, max_delay=0.1
        )
        self._clock = clock
        if engine is True:
            engine = EngineConfig()
        self.engine_config = engine or None
        if breaker_factory is None:
            breaker_factory = lambda: CircuitBreaker(clock=clock)  # noqa: E731
        self._rungs = [
            _Rung(
                name,
                InferenceEngine(model, config=engine, clock=clock)
                if engine else model,
                breaker_factory(),
            )
            for name, model in rungs
        ]
        self._stats = ServiceStats(names)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def recommend(
        self,
        history,
        top_n: int | None = None,
        deadline=_UNSET,
    ) -> Recommendation:
        """Rank ``top_n`` items for one user history.

        Raises :class:`InvalidRequest`, :class:`DeadlineExceeded`, or
        :class:`AllRungsFailed`; any returned ranking is guaranteed
        finite, deduplicated, in-vocabulary, and free of the user's own
        history (when ``exclude_history`` is on).
        """
        self._stats.requests += 1
        budget = self.config.deadline if deadline is _UNSET else deadline
        try:
            history, top_n = self._validate(history, top_n)
        except InvalidRequest:
            self._stats.rejected += 1
            raise
        start = self._clock()
        causes: dict[str, str] = {}
        for index, rung in enumerate(self._rungs):
            if not rung.breaker.allow():
                self._stats.rungs[rung.name].short_circuited += 1
                causes[rung.name] = "breaker open"
                continue
            ranked = self._attempt(rung, history, top_n, start, budget,
                                   causes)
            if ranked is not None:
                if index > 0:
                    self._stats.fallbacks += 1
                self._stats.served[rung.name] += 1
                return Recommendation(
                    items=ranked,
                    rung=rung.name,
                    latency=self._clock() - start,
                    degraded=index > 0,
                    fallbacks=index,
                )
        elapsed = self._clock() - start
        if budget is not None and elapsed >= budget:
            self._stats.deadline_exceeded += 1
            error = DeadlineExceeded(
                f"no rung answered within the {budget}s budget "
                f"({elapsed:.3f}s elapsed); causes: {causes}"
            )
            error.causes = dict(causes)
            raise error
        self._stats.exhausted += 1
        raise AllRungsFailed(
            f"all {len(self._rungs)} rungs failed", causes
        )

    def recommend_many(
        self,
        histories,
        top_n: int | None = None,
        deadline=_UNSET,
    ) -> list:
        """Serve a batch of requests with one coalesced forward.

        The valid histories are first pushed through the highest
        non-open rung's engine in micro-batches (one padded forward per
        ``max_batch`` chunk, warming the score cache); each request then
        flows through :meth:`recommend` unchanged — same validation,
        breaker, retry, and deadline semantics — and picks its row up
        from the cache instead of paying its own forward pass.  Rankings
        are therefore bitwise-identical to calling :meth:`recommend` in
        a loop; batch-coalescing time is attributed to the batch (the
        per-request latency stats measure the serve itself).

        Returns a list aligned with ``histories`` whose elements are
        :class:`Recommendation` on success and the raised
        :class:`~repro.serve.errors.ServeError` on failure — errors are
        returned, not raised, so one bad request cannot fail the batch.
        Requires the service to be built with ``engine=`` for the
        speedup; without one this degrades to the sequential loop.
        """
        histories = list(histories)
        valid = []
        for history in histories:
            try:
                validated, _ = self._validate(history, top_n)
            except InvalidRequest:
                continue  # recommend() below re-raises and accounts it
            valid.append(validated)
        if valid:
            for rung in self._rungs:
                engine = rung.engine
                if engine is None:
                    continue
                # Only the highest healthy rung is warmed: lower rungs
                # see traffic only when requests degrade, and an open
                # breaker means "stop hammering this model" — prefetch
                # must respect that too.
                if rung.breaker.allow():
                    engine.prefetch(valid)
                break
        results = []
        for history in histories:
            try:
                results.append(
                    self.recommend(history, top_n=top_n, deadline=deadline)
                )
            except ServeError as error:
                results.append(error)
        return results

    def _attempt(
        self, rung: _Rung, history, top_n, start, budget, causes,
    ) -> np.ndarray | None:
        """Try one rung, retrying transient failures in place.

        Returns the ranking, or ``None`` (with breaker/stats updated and
        ``causes[rung]`` set) to fall through to the next rung.
        """
        rstats = self._stats.rungs[rung.name]
        for attempt in range(self.retry.max_attempts):
            rstats.attempts += 1
            called_at = self._clock()
            # The budget is cumulative across the whole request: each
            # call only gets what earlier rungs, retries, and backoffs
            # left over — never a fresh full budget.
            remaining = (
                None if budget is None else budget - (called_at - start)
            )
            try:
                scores = rung.model.score_batch([history])
            except Exception as error:  # noqa: BLE001 — rung isolation
                rung.breaker.record_failure()
                rstats.failures["error"] += 1
                causes[rung.name] = f"error: {error}"
                if (
                    isinstance(error, TransientError)
                    and attempt < self.retry.max_attempts - 1
                    and self._pause_within_budget(attempt, start, budget)
                ):
                    continue
                return None
            elapsed = self._clock() - called_at
            if budget is not None and elapsed > max(remaining, 0.0):
                # The call returned, but outran what was left of the
                # budget: a caller with a real deadline has given up on
                # it, so it counts as a failure and a cheaper rung gets
                # a shot.
                rung.breaker.record_failure()
                rstats.failures["timeout"] += 1
                causes[rung.name] = (
                    f"timeout ({elapsed:.3f}s call with "
                    f"{max(remaining, 0.0):.3f}s of the {budget}s "
                    f"budget left)"
                )
                return None
            try:
                if isinstance(scores, TopScores):
                    ranked = self._rank_narrow(rung, scores, history, top_n)
                else:
                    ranked = self._rank(scores, history, top_n)
            except (NonFiniteScoresError, ValueError) as error:
                rung.breaker.record_failure()
                rstats.failures["non_finite"] += 1
                causes[rung.name] = f"invalid scores: {error}"
                return None
            rung.breaker.record_success()
            rstats.successes += 1
            rstats.latency.add(elapsed)
            return ranked
        return None

    def _pause_within_budget(self, attempt, start, budget) -> bool:
        """Back off before a retry iff the remaining budget allows it.

        Returns ``False`` (skip the retry entirely) when the budget is
        spent or the remainder cannot even cover ``base_delay`` — a
        retry that would start after the deadline helps nobody.  The
        pause itself is capped at the remaining budget so a jittered
        backoff can never sleep the request past its deadline.
        """
        if budget is None:
            self.retry.pause(attempt)
            return True
        remaining = budget - (self._clock() - start)
        if remaining <= 0.0 or remaining < self.retry.base_delay:
            return False
        self.retry.pause(attempt, limit=remaining)
        return True

    # ------------------------------------------------------------------
    # Validation and ranking
    # ------------------------------------------------------------------
    def _validate(
        self, history, top_n: int | None
    ) -> tuple[np.ndarray, int]:
        top_n = self.config.top_n if top_n is None else top_n
        if top_n < 1:
            raise InvalidRequest(f"top_n must be >= 1, got {top_n}")
        array = np.asarray(history)
        if array.ndim != 1:
            raise InvalidRequest(
                f"history must be 1-D, got shape {array.shape}"
            )
        if array.size == 0:
            raise InvalidRequest("history is empty")
        if not np.issubdtype(array.dtype, np.integer):
            if np.issubdtype(array.dtype, np.floating) and np.all(
                np.isfinite(array)
            ) and np.all(array == np.floor(array)):
                array = array.astype(np.int64)
            else:
                raise InvalidRequest(
                    f"history must hold integer item ids, got dtype "
                    f"{array.dtype}"
                )
        array = array.astype(np.int64, copy=False)
        invalid = (array < 1) | (array > self.num_items)
        if invalid.any():
            if self.config.unknown_items == "reject":
                bad = np.unique(array[invalid])
                raise InvalidRequest(
                    f"history contains {int(invalid.sum())} unknown or "
                    f"invalid item ids (valid range 1..{self.num_items}): "
                    f"{bad[:5].tolist()}{'…' if len(bad) > 5 else ''}"
                )
            array = array[~invalid]
            if array.size == 0:
                raise InvalidRequest(
                    "history is empty after dropping unknown item ids"
                )
        if len(array) > self.config.max_history:
            array = array[-self.config.max_history:]
        return array, top_n

    def _rank(
        self, scores, history: np.ndarray, top_n: int
    ) -> np.ndarray:
        scores = np.asarray(scores, dtype=np.float64)
        expected = (1, self.num_items + 1)
        if scores.shape != expected:
            raise ValueError(
                f"expected scores of shape {expected}, got {scores.shape}"
            )
        exclude = [history] if self.config.exclude_history else None
        ranked = rank_items_batch(
            scores, top_n, exclude=exclude, check_finite=True
        )[0]
        # Drop the -inf sentinel tail: when fewer than top_n items are
        # rankable the batch kernel pads the list with excluded/padding
        # ids, which a service must never actually recommend.
        masked = scores[0].copy()
        masked[0] = -np.inf
        if exclude is not None:
            masked[history] = -np.inf
        ranked = ranked[masked[ranked] > -np.inf]
        if ranked.size == 0:
            raise ValueError("no rankable items after exclusions")
        return ranked

    def _rank_narrow(
        self, rung: _Rung, top: TopScores, history: np.ndarray, top_n: int
    ) -> np.ndarray:
        """Rank a candidate-native response without densifying it.

        The narrow twin of :meth:`_rank`: O(C log C) over the packed
        candidate list instead of O(|I|) over a scattered row, with the
        same exclusion semantics (history ids masked out, the 0-pad tail
        stripped exactly like the dense path's ``-inf`` tail).  When the
        exclusions swallow *every* retrieved candidate the request falls
        back to one true dense forward through the rung's engine
        (``score_batch_dense``) — the full catalogue can still be ranked,
        it just costs the allocation the narrow path normally avoids.
        Both outcomes are counted in the service stats
        (``narrow_ranked`` / ``dense_fallbacks``).
        """
        if len(top) != 1:
            raise ValueError(
                f"expected a 1-row narrow response, got {len(top)} rows"
            )
        if top.width != self.num_items + 1:
            raise ValueError(
                f"narrow width {top.width} does not match the service "
                f"vocabulary ({self.num_items + 1})"
            )
        exclude = [history] if self.config.exclude_history else None
        ranked = rank_top_scores(
            top, top_n, exclude=exclude, check_finite=True
        )[0]
        ranked = ranked[ranked != 0]
        if ranked.size == 0:
            dense = getattr(rung.model, "score_batch_dense", None)
            if dense is None:
                raise ValueError(
                    "no rankable candidates after exclusions and the "
                    "rung has no dense fallback"
                )
            self._stats.dense_fallbacks += 1
            return self._rank(dense([history]), history, top_n)
        self._stats.narrow_ranked += 1
        return ranked

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def reload_rung(
        self,
        name: str,
        path,
        registry: dict[str, type],
        check_finite: bool = True,
        retries: RetryPolicy | None = None,
    ) -> None:
        """Hot-swap a rung's model from a checkpoint.

        The file is loaded through
        :func:`repro.serve.loading.safe_load_model` (corrupt/truncated/
        NaN-weight files raise :class:`repro.nn.CheckpointError` and the
        current model keeps serving); on success the rung's breaker is
        reset so the fresh model starts with a clean slate, and — when
        the rung runs through an engine — every cached score for the old
        weights is invalidated (version bump + eager clear).
        """
        rung = self._rung(name)
        self._install(rung, safe_load_model(
            path, registry, check_finite=check_finite, retries=retries
        ))

    def swap_model(self, name: str, model) -> None:
        """Replace a rung's model with an already-built one (same cache
        invalidation as :meth:`reload_rung`)."""
        self._install(self._rung(name), model)

    @staticmethod
    def _install(rung: _Rung, model) -> None:
        engine = rung.engine
        if engine is not None:
            engine.set_model(model)
        else:
            rung.model = model
        rung.breaker.reset()

    def set_engine_config(self, engine: EngineConfig | bool | None) -> None:
        """Re-wrap every rung for a different engine configuration.

        Shard workers use this to apply a per-shard
        :class:`EngineConfig` override after the (shared) factory has
        built the service — e.g. a retrieval index or a bigger score
        cache on hot shards only.  Each rung's *current* model is kept;
        engines are rebuilt around it (fresh cache/batcher), and
        ``None`` unwraps back to direct model calls.
        """
        if engine is True:
            engine = EngineConfig()
        engine = engine or None
        self.engine_config = engine
        for rung in self._rungs:
            model = (
                rung.engine.model if rung.engine is not None else rung.model
            )
            rung.model = (
                InferenceEngine(model, config=engine, clock=self._clock)
                if engine else model
            )

    def current_model(self, name: str):
        """The model currently serving rung ``name`` (unwrapping the
        engine when the rung routes through one) — what a canary
        rollback must restore."""
        rung = self._rung(name)
        engine = rung.engine
        return engine.model if engine is not None else rung.model

    def warm_programs(self, batch_sizes) -> int:
        """Pre-trace compiled scoring programs for ``batch_sizes``.

        A respawned cluster replica calls this before rejoining the
        ring: for each rung whose model compiles its scoring forwards
        (:mod:`repro.tensor.compile`), one probe ``score_batch`` runs
        per hot batch size, so the replica's first real flushes *replay*
        programs instead of paying the trace.  Sizes are translated to
        the model-level shapes the engine's micro-batcher will actually
        produce (``max_batch`` chunks plus the ragged remainder); probes
        call the model directly, so no score cache or stats counter
        moves.  Returns how many programs were traced.
        """
        from ..tensor.compile import programs_for

        warmed = 0
        for rung in self._rungs:
            engine = rung.engine
            model = engine.model if engine is not None else rung.model
            if not getattr(model, "compile_scoring", False):
                continue
            if getattr(model, "max_length", None) is None:
                continue
            chunk_sizes: set[int] = set()
            for size in batch_sizes:
                size = int(size)
                if size < 1:
                    continue
                if engine is not None:
                    full, remainder = divmod(size, engine.config.max_batch)
                    if full:
                        chunk_sizes.add(engine.config.max_batch)
                    if remainder:
                        chunk_sizes.add(remainder)
                else:
                    chunk_sizes.add(size)
            probe = np.array([1], dtype=np.int64)
            for size in sorted(chunk_sizes):
                before = len(programs_for(model))
                model.score_batch([probe] * size)
                warmed += len(programs_for(model)) - before
        return warmed

    def describe_rungs(self) -> dict:
        """Per-rung model identity: class name plus the engine's model
        version and a summary of its configuration (both ``None`` for
        direct model calls).  The cluster's canary rollout uses this to
        assert which model generation each shard is actually serving;
        the engine summary is how heterogeneous per-shard overrides
        stay observable from the router."""
        description = {}
        for rung in self._rungs:
            engine = rung.engine
            model = engine.model if engine is not None else rung.model
            description[rung.name] = {
                "model": type(model).__name__,
                "version": (
                    engine.model_version if engine is not None else None
                ),
                "engine": (
                    {
                        "max_batch": engine.config.max_batch,
                        "cache_capacity": engine.config.cache_capacity,
                        "cache_capacity_bytes":
                            engine.config.cache_capacity_bytes,
                        "retrieval": engine.config.index is not None,
                        "narrow": engine.config.narrow,
                    }
                    if engine is not None else None
                ),
            }
        return description

    def breaker(self, name: str) -> CircuitBreaker:
        """The breaker guarding rung ``name`` (for tests/ops)."""
        return self._rung(name).breaker

    def _rung(self, name: str) -> _Rung:
        for rung in self._rungs:
            if rung.name == name:
                return rung
        raise KeyError(
            f"no rung named {name!r}; have "
            f"{[rung.name for rung in self._rungs]}"
        )

    def raw_stats(self) -> ServiceStats:
        """The live :class:`ServiceStats` object (picklable), so shard
        processes can ship it over a pipe for cross-process
        :meth:`ServiceStats.merge` aggregation."""
        return self._stats

    def stats(self) -> dict:
        """JSON-friendly snapshot of all counters and breaker states
        (plus per-rung engine cache/batcher stats when engines are on)."""
        return self._stats.snapshot(
            breakers={
                rung.name: rung.breaker.snapshot() for rung in self._rungs
            },
            engines={
                rung.name: rung.engine.snapshot()
                for rung in self._rungs
                if rung.engine is not None
            },
        )
