"""End-to-end serving smoke test (the ``repro serve-smoke`` command).

Proves the fault-tolerance story on a real model with real faults:

1. builds (or loads) a VSAN checkpoint and *safe-loads* it, after first
   demonstrating that truncated and bit-flipped copies of the same file
   are rejected with :class:`CheckpointError`;
2. stands up a ``VSAN → SASRec → POP`` service with the VSAN rung
   wrapped in a seeded :class:`FaultInjector` (latency spikes, raised
   exceptions, NaN-poisoned scores);
3. drives a faulty phase — every request must still get a valid, finite,
   deduplicated, in-vocabulary ranking from *some* rung — then clears
   the faults and verifies the primary breaker re-closes and the primary
   rung takes traffic back;
4. asserts the service's accounting is exact: every request landed in
   exactly one outcome bucket.

Exit code 0 means all of the above held; any violation raises
:class:`SmokeFailure` (mapped to exit 1 by the CLI).
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from ..data import generate, prepare_corpus, read_interactions_csv, tiny_config
from ..train import Trainer, TrainerConfig
from ..retrieval import IndexConfig
from .breaker import CLOSED, CircuitBreaker
from .engine import EngineConfig
from .errors import CheckpointError
from .faults import FaultInjector, FaultyRecommender, flip_byte, truncate_file
from .loading import safe_load_model
from .retry import RetryPolicy
from .service import Recommendation, RecommendService, ServiceConfig

__all__ = [
    "SmokeFailure",
    "run_chaos_smoke",
    "run_cluster_smoke",
    "run_smoke",
]


class SmokeFailure(AssertionError):
    """A serving invariant was violated during the smoke run."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def _check_recommendation(rec, history: np.ndarray, num_items: int) -> None:
    items = np.asarray(rec.items)
    _require(items.size > 0, "empty recommendation list")
    _require(
        np.issubdtype(items.dtype, np.integer),
        f"non-integer item ids ({items.dtype})",
    )
    _require(
        bool(((items >= 1) & (items <= num_items)).all()),
        f"out-of-vocabulary ids in ranking: {items.tolist()}",
    )
    _require(
        len(np.unique(items)) == len(items),
        f"duplicate ids in ranking: {items.tolist()}",
    )
    _require(
        not np.isin(items, history).any(),
        "ranking recommends items from the user's own history",
    )


def _corrupt_checkpoint_drill(checkpoint: Path, registry, log) -> None:
    """Truncated and bit-flipped copies must raise CheckpointError."""
    with tempfile.TemporaryDirectory() as scratch:
        for corrupt, label in (
            (truncate_file, "truncated"),
            (flip_byte, "bit-flipped"),
        ):
            copy = Path(scratch) / f"{label}.npz"
            shutil.copyfile(checkpoint, copy)
            corrupt(copy)
            try:
                safe_load_model(copy, registry)
            except CheckpointError:
                log(f"  {label} checkpoint rejected with CheckpointError")
            else:
                raise SmokeFailure(
                    f"{label} checkpoint loaded without error"
                )


def run_smoke(
    requests: int = 100,
    seed: int = 0,
    error_rate: float = 0.35,
    nan_rate: float = 0.35,
    latency_rate: float = 0.1,
    data: str | None = None,
    checkpoint: str | None = None,
    epochs: int = 2,
    verbose: bool = True,
    engine: bool = False,
    retrieval: bool = False,
    compile: bool = True,
) -> int:
    """Run the smoke scenario; returns 0 on success.

    Args:
        requests: total requests (half faulty phase, half clear phase).
        seed: seeds data generation, training, and the fault injector.
        error_rate / nan_rate / latency_rate: injector probabilities for
            the faulty phase.
        data: optional interactions CSV (default: synthetic tiny config).
        checkpoint: optional pre-trained VSAN checkpoint (default: train
            a throwaway one on the corpus).
        epochs: training budget for throwaway models.
        verbose: print progress and the final stats snapshot.
        engine: route every rung through the
            :class:`repro.serve.InferenceEngine` (micro-batching + score
            cache) and drive traffic through ``recommend_many`` — the
            same fault invariants must hold, plus the engine must show
            real coalescing and cache activity.
        retrieval: (implies ``engine``) configure an *approximate* IVF
            index on every rung's engine; the run then additionally
            asserts the two-stage path actually served requests (index
            searches happened and the index was not in exact mode).
    """
    from ..core import VSAN
    from ..models import POP, SASRec

    engine = engine or retrieval
    log = print if verbose else (lambda *args, **kwargs: None)
    registry = {"VSAN": VSAN, "SASRec": SASRec}

    if data is not None:
        interactions = read_interactions_csv(data)
    else:
        interactions = generate(tiny_config(), seed=seed)
    corpus = prepare_corpus(interactions)
    num_items = corpus.num_items
    max_length = 20
    log(f"corpus: {len(corpus.sequences)} users, {num_items} items")

    trainer = Trainer(TrainerConfig(
        epochs=epochs, batch_size=64, verbose=False, seed=seed,
        compile=compile,
    ))

    with tempfile.TemporaryDirectory() as scratch:
        if checkpoint is None:
            from ..nn import save_checkpoint

            config = dict(
                num_items=num_items, max_length=max_length, dim=16,
                h1=1, h2=1, k=1, seed=seed,
            )
            vsan = VSAN(**config)
            trainer.fit(vsan, corpus)
            checkpoint = str(Path(scratch) / "vsan.npz")
            save_checkpoint(vsan, checkpoint, config=config)
            log(f"trained throwaway VSAN ({epochs} epochs) -> checkpoint")
        checkpoint = Path(checkpoint)

        log("corrupt-checkpoint drill:")
        _corrupt_checkpoint_drill(checkpoint, registry, log)

        primary = safe_load_model(checkpoint, registry)
        log(f"safe-loaded primary model from {checkpoint.name}")

        sasrec = SASRec(num_items, max_length, dim=16, num_blocks=1,
                        seed=seed)
        trainer.fit(sasrec, corpus)
        pop = POP(num_items).fit(corpus)
        if not compile:
            # Direct (engine-less) rungs read the per-instance knob.
            primary.compile_scoring = False
            sasrec.compile_scoring = False

        injector = FaultInjector(
            error_rate=error_rate,
            nan_rate=nan_rate,
            latency_rate=latency_rate,
            latency=0.01,
            seed=seed,
        )
        cooldown = 0.05
        service = RecommendService(
            [
                ("VSAN", FaultyRecommender(primary, injector)),
                ("SASRec", sasrec),
                ("POP", pop),
            ],
            num_items=num_items,
            config=ServiceConfig(top_n=10, deadline=2.0,
                                 unknown_items="drop"),
            retry=RetryPolicy(max_attempts=2, base_delay=0.002,
                              max_delay=0.01, seed=seed),
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=0.5, window=8, min_calls=4,
                cooldown=cooldown, half_open_probes=2,
            ),
            engine=(
                EngineConfig(
                    max_batch=16,
                    compile=compile,
                    index=(
                        # Deliberately approximate: half the lists
                        # probed, so exact-mode short-circuiting cannot
                        # mask a broken two-stage path.
                        IndexConfig(
                            nlist=4, nprobe=2,
                            candidates=max(24, num_items // 2),
                            seed=seed,
                        )
                        if retrieval else None
                    ),
                )
                if engine else None
            ),
        )
        if engine:
            log("engine mode: micro-batched recommend_many "
                f"(max_batch=16, LRU score cache"
                f"{', approximate IVF retrieval' if retrieval else ''})")

        def serve_chunk(chunk):
            """One service call per request, or one coalesced batch."""
            if engine:
                results = service.recommend_many(chunk)
                for history, rec in zip(chunk, results):
                    _require(
                        isinstance(rec, Recommendation),
                        f"batched request failed with {rec!r}",
                    )
                    _check_recommendation(rec, history, num_items)
            else:
                for history in chunk:
                    rec = service.recommend(history)
                    _check_recommendation(rec, history, num_items)

        histories = corpus.sequences
        faulty_phase = requests // 2
        log(f"phase 1: {faulty_phase} requests with injected faults "
            f"(error={error_rate}, nan={nan_rate}, latency={latency_rate})")
        for start in range(0, faulty_phase, 10):
            chunk = [
                histories[index % len(histories)]
                for index in range(start, min(start + 10, faulty_phase))
            ]
            serve_chunk(chunk)
            # Requests are far faster than the cooldown, so an open
            # breaker would otherwise short-circuit the whole phase;
            # let it reach half-open so faulty probes keep flowing.
            time.sleep(cooldown * 1.5)
        tripped = service.breaker("VSAN").times_opened
        _require(
            tripped > 0,
            "injected faults never tripped the primary breaker; raise "
            "the fault rates or the request count",
        )
        served_primary_before = service.stats()["served_by_rung"].get(
            "VSAN", 0
        )
        _require(
            sum(injector.injected.values()) > 0,
            "no faults were actually injected during the faulty phase",
        )
        log(f"  primary breaker tripped {tripped}x; injected faults: "
            f"{injector.injected}; all {faulty_phase} requests served "
            f"valid rankings")

        injector.disable()
        time.sleep(cooldown * 2)  # let the open breaker reach half-open
        clear_phase = requests - faulty_phase
        log(f"phase 2: {clear_phase} requests with faults cleared")
        for start in range(0, clear_phase, 16):
            serve_chunk([
                histories[index % len(histories)]
                for index in range(start, min(start + 16, clear_phase))
            ])
        stats = service.stats()
        _require(
            service.breaker("VSAN").state == CLOSED,
            f"primary breaker did not re-close after faults cleared "
            f"(state={service.breaker('VSAN').state})",
        )
        _require(
            stats["served_by_rung"].get("VSAN", 0) > served_primary_before,
            "primary rung served no traffic after faults cleared",
        )
        _require(
            stats["requests"] == requests,
            f"request counter drifted: {stats['requests']} != {requests}",
        )
        _require(
            stats["served"] == requests,
            f"not every request was served: {stats['served']}/{requests}",
        )
        _require(
            stats["accounted"],
            f"stats do not account for every request: {stats}",
        )
        if engine:
            snap = stats["rungs"]["VSAN"]["engine"]
            _require(
                snap["batcher"]["batched_requests"] > 0,
                "engine mode served traffic but the batcher never ran",
            )
            _require(
                snap["batcher"]["largest_flush"] > 1,
                "requests were never actually coalesced "
                f"(largest flush = {snap['batcher']['largest_flush']})",
            )
            _require(
                snap["cache"]["hits"] > 0,
                "repeat traffic produced no score-cache hits",
            )
            log(
                f"engine OK: largest flush "
                f"{snap['batcher']['largest_flush']}, cache hit rate "
                f"{snap['cache']['hit_rate']:.0%}"
            )
            if retrieval:
                retr = snap["retrieval"]
                _require(
                    retr is not None,
                    "retrieval mode requested but the primary engine "
                    "never built an index",
                )
                _require(
                    not retr["exact"],
                    "retrieval smoke must exercise the approximate "
                    "path, but the index ran in exact mode",
                )
                _require(
                    retr["searches"] > 0,
                    "retrieval index built but no request was served "
                    "through it",
                )
                _require(
                    retr["narrow_batches"] > 0,
                    "approximate retrieval served traffic but the "
                    "candidate-native (narrow) path never ran",
                )
                _require(
                    stats["narrow_ranked"] > 0,
                    "narrow scores were produced but no request was "
                    "ranked straight from its candidate list",
                )
                cache_bytes = snap["cache"]["bytes_per_entry"]
                # The memory win only materializes at catalogue scale
                # (gated hard in benchmarks/test_retrieval.py); at toy
                # sizes just require the byte accounting to be live.
                _require(
                    cache_bytes > 0,
                    "narrow entries cached but the byte accounting "
                    "stayed at zero",
                )
                log(
                    f"retrieval OK: {retr['searches']} searches over "
                    f"nlist={retr['nlist']} nprobe={retr['nprobe']}, "
                    f"{retr['scanned']} vectors scanned, "
                    f"{stats['narrow_ranked']} narrow-ranked requests, "
                    f"{cache_bytes:.0f} cache bytes/entry"
                )
        log("phase 2 OK: breaker re-closed, primary restored")
        log(json.dumps(stats, indent=2, sort_keys=True))
        # The one-line verdict is printed even in quiet mode.
        print(f"serve-smoke OK: {requests}/{requests} valid rankings, "
              f"{stats['fallbacks']} served from fallback rungs")
    return 0


class _FlakyCanary:
    """A canary that fails its first call, then serves correctly.

    One :class:`~repro.serve.errors.TransientError` per shard replica is
    exactly enough to trip a hair-trigger breaker during rollout probes
    — while the in-place retry still serves every probe from the canary
    rung itself, so the breaker trip (not a degraded probe) is what the
    rollout health check must catch.
    """

    def __init__(self, inner):
        self.inner = inner
        self.name = f"flaky-canary({getattr(inner, 'name', type(inner).__name__)})"
        self._failures_left = 1

    def score(self, history: np.ndarray) -> np.ndarray:
        return self.score_batch([history])[0]

    def score_batch(self, histories) -> np.ndarray:
        from .errors import TransientError

        if self._failures_left > 0:
            self._failures_left -= 1
            raise TransientError("injected canary fault")
        return self.inner.score_batch(histories)


def run_cluster_smoke(
    requests: int = 300,
    num_shards: int = 3,
    seed: int = 0,
    rate: float = 500.0,
    verbose: bool = True,
) -> int:
    """Three drills against a live sharded cluster; returns 0 on success.

    1. **Load** — replay seeded Zipf traffic (1M-user population) open
       loop through ``num_shards`` forked shard services; every arrival
       must land in exactly one outcome bucket, cluster-side and in the
       merged shard :class:`~repro.serve.ServiceStats`.  A second,
       **paced** replay then runs closed to the arrival schedule and
       must report >= 90% SLO attainment (completions inside the router
       deadline at the offered rate), with the same metric visible in
       ``stats()``.
    2. **Kill drill** — SIGKILL one shard while its queue is full
       (respawn pinned off: this drill proves graceful *degradation*;
       the self-healing path has its own chaos drill).  The drain must
       return (shed/failed, never hung), accounting must stay exact,
       and rerouted traffic for the dead shard's users must be served
       by the survivors.
    3. **Canary rollback** — roll out a canary that trips the primary
       breaker during probes; the rollout must abort, roll every swapped
       shard back, and ``describe()`` must show the prior model
       restored on every shard.

    Args:
        requests: arrivals for the load phase (the kill drill replays
            half as many more).
        num_shards: shard worker processes.
        seed: seeds traffic, models, and the injected canary fault.
        rate: offered load of the generated schedule, req/s.
        verbose: print per-phase progress.
    """
    from types import SimpleNamespace

    from ..core import VSAN
    from ..data.synthetic import (
        ZipfCatalogConfig,
        ZipfTrafficConfig,
        zipf_histories,
        zipf_traffic,
    )
    from ..models import POP
    from .breaker import CircuitBreaker
    from .cluster import ClusterConfig, ServingCluster

    log = print if verbose else (lambda *args, **kwargs: None)

    traffic_config = ZipfTrafficConfig(
        num_users=1_000_000, num_items=200, num_requests=requests,
        rate=rate, max_length=18,
    )
    num_items = traffic_config.num_items

    # Models are built in the parent and inherited by each forked shard
    # (copy-on-write, never pickled).  An untrained VSAN scores finite,
    # valid rankings — the drills exercise the serving machinery, not
    # ranking quality.
    primary = VSAN(num_items=num_items, max_length=20, dim=16,
                   h1=1, h2=1, k=1, seed=seed)
    pop = POP(num_items).fit(SimpleNamespace(
        num_items=num_items,
        sequences=zipf_histories(
            ZipfCatalogConfig(num_users=32, num_items=num_items), seed
        ),
    ))

    def factory():
        return RecommendService(
            [("VSAN", primary), ("POP", pop)],
            num_items=num_items,
            config=ServiceConfig(top_n=10, deadline=2.0),
            retry=RetryPolicy(max_attempts=3, base_delay=0.001,
                              max_delay=0.002, seed=seed),
            breaker_factory=lambda: CircuitBreaker(
                # Hair trigger: a single failure trips.  Healthy-phase
                # traffic never fails, so only the canary drill arms it.
                failure_threshold=0.5, window=6, min_calls=1,
                cooldown=30.0,
            ),
        )

    with ServingCluster(
        factory,
        config=ClusterConfig(num_shards=num_shards, batch_size=8,
                             max_queue=64, deadline=2.0,
                             worker_timeout=20.0,
                             # Phase 2 asserts graceful degradation —
                             # the killed shard must *stay* dead.
                             respawn=False),
    ) as cluster:
        log(f"cluster: {num_shards} shards, "
            f"{traffic_config.num_users:,} simulated users")

        # -- Phase 1: open-loop Zipf load ------------------------------
        log(f"phase 1: {requests} Zipf arrivals at {rate:.0f} req/s "
            f"(open loop)")
        report = cluster.run_load(
            zipf_traffic(traffic_config, seed), drain_timeout=20.0
        )
        _require(report["cluster_accounted"],
                 f"cluster accounting drifted under load: {report}")
        _require(report["service_accounted"],
                 "merged shard stats violate accounted() under load")
        _require(report["completed"] > 0, "load phase completed nothing")
        log(f"  sustained {report['sustained_rps']:.0f} req/s, "
            f"p99 {report['latency'].get('p99_ms', 0.0):.1f} ms, "
            f"{report['shed']} shed, {report['failed']} failed")

        # -- Phase 1b: paced closed-SLO run ----------------------------
        paced_requests = max(requests // 3, 50)
        paced_rate = min(rate, 400.0)
        log(f"phase 1b: {paced_requests} arrivals paced at "
            f"{paced_rate:.0f} req/s (closed to schedule, SLO = "
            f"deadline {cluster.config.deadline}s)")
        paced = cluster.run_load(
            zipf_traffic(
                ZipfTrafficConfig(
                    num_users=traffic_config.num_users,
                    num_items=num_items,
                    num_requests=paced_requests, rate=paced_rate,
                    max_length=18,
                ),
                seed + 3,
            ),
            pace=True,
            drain_timeout=20.0,
        )
        _require(paced["cluster_accounted"],
                 f"cluster accounting drifted under paced load: {paced}")
        _require(paced["slo_attainment"] is not None,
                 "paced run reported no SLO attainment despite a "
                 "router deadline")
        _require(paced["slo_attainment"] >= 0.9,
                 f"SLO attainment {paced['slo_attainment']:.2%} < 90% "
                 f"at the offered rate ({paced_rate:.0f} req/s)")
        _require(
            cluster.stats()["cluster"]["slo_attainment"] is not None,
            "stats() does not report slo_attainment",
        )
        log(f"  SLO attainment {paced['slo_attainment']:.1%} at "
            f"{paced_rate:.0f} req/s offered")

        # -- Phase 2: kill one shard mid-run ---------------------------
        victim = cluster.live_shards[0]
        log(f"phase 2: kill drill — SIGKILL shard {victim} with "
            f"traffic queued")
        drill = list(zipf_traffic(
            ZipfTrafficConfig(
                num_users=traffic_config.num_users, num_items=num_items,
                num_requests=max(requests // 2, 50), rate=rate,
                max_length=18,
            ),
            seed + 1,
        ))
        for user, history, _ in drill[: len(drill) // 2]:
            cluster.submit(user, history)
        cluster.kill_shard(victim)
        for user, history, _ in drill[len(drill) // 2:]:
            cluster.submit(user, history)
        drill_started = time.monotonic()
        cluster.drain(timeout=15.0)
        drill_elapsed = time.monotonic() - drill_started
        _require(drill_elapsed < 15.0,
                 f"drain hung for {drill_elapsed:.1f}s after the kill")
        _require(victim not in cluster.live_shards,
                 f"dead shard {victim} still marked live")
        _require(len(cluster.live_shards) == num_shards - 1,
                 f"expected {num_shards - 1} survivors, have "
                 f"{cluster.live_shards}")
        _require(cluster.accounted(),
                 "cluster accounting drifted across the shard kill")
        stats = cluster.stats()
        _require(stats["service"]["accounted"],
                 "merged shard stats violate accounted() after the kill")
        log(f"  shard {victim} gone in {drill_elapsed:.2f}s: "
            f"{cluster.failed} failed with it, queue rerouted, "
            f"{cluster.completed} served total, accounting exact")

        # -- Phase 3: canary rollout with injected breaker trip --------
        log("phase 3: canary rollback drill — canary trips the primary "
            "breaker during probes")
        before = cluster.describe()
        canary = _FlakyCanary(
            VSAN(num_items=num_items, max_length=20, dim=16,
                 h1=1, h2=1, k=1, seed=seed + 7)
        )
        probes = [history for _, history, _ in drill[:4]]
        # One probe per shard: the canary serves it (retry in place)
        # while the hair-trigger breaker records the trip; a second
        # probe would short-circuit to the fallback and mask the trip
        # behind a degraded-probe verdict.
        rollout = cluster.rollout("VSAN", canary, probes,
                                  probes_per_shard=1)
        _require(not rollout.ok, "flaky canary rollout reported ok")
        _require(rollout.rolled_back,
                 "failed rollout did not roll swapped shards back")
        _require("breaker tripped" in (rollout.reason or ""),
                 f"rollback happened for the wrong reason: "
                 f"{rollout.reason}")
        after = cluster.describe()
        _require(after == before,
                 f"rollback did not restore the prior models: "
                 f"{before} -> {after}")
        log(f"  rollout aborted on shard {rollout.failed_shard} "
            f"({rollout.reason}); all shards restored to "
            f"{before[cluster.live_shards[0]]['VSAN']['model']}")

        final = cluster.stats()
        _require(final["cluster"]["accounted"],
                 "final cluster accounting drifted")
        _require(final["service"]["accounted"],
                 "final merged shard stats violate accounted()")
        log(json.dumps(final["cluster"], indent=2, sort_keys=True))
        # The one-line verdict is printed even in quiet mode.
        print(
            f"serve-smoke cluster OK: {cluster.completed}/"
            f"{cluster.submitted} served, {cluster.shed} shed, "
            f"{cluster.failed} failed with the killed shard, canary "
            f"rolled back on breaker trip"
        )
    return 0


def run_chaos_smoke(
    requests: int = 240,
    num_shards: int = 3,
    replicas_per_shard: int = 2,
    faults: int = 6,
    seed: int = 0,
    rate: float = 240.0,
    verbose: bool = True,
) -> int:
    """Seeded chaos drill against the self-healing cluster; 0 on success.

    Replays paced Zipf traffic through ``num_shards`` replica groups
    while a seeded schedule SIGKILLs and stalls workers
    (:func:`repro.serve.chaos.run_chaos` asserts the accounting
    invariants at every checkpoint), then requires:

    - at least 5 faults actually fired;
    - **zero failed requests** — every fault hit a replicated shard, so
      in-flight work failed over instead of dying;
    - availability (completed/submitted) >= 90% despite the faults;
    - full recovery — every killed worker respawned, every shard back
      on the ring with a full replica group, and every shard serving
      both a control round-trip and data-plane probe traffic.

    The seed is printed even in quiet mode so a CI failure is
    replayable bit-for-bit with ``serve-smoke --chaos --seed N``.
    """
    from types import SimpleNamespace

    from ..core import VSAN
    from ..data.synthetic import (
        ChaosScheduleConfig,
        ZipfCatalogConfig,
        ZipfTrafficConfig,
        chaos_schedule,
        zipf_histories,
        zipf_traffic,
    )
    from ..models import POP
    from .chaos import ChaosConfig, run_chaos
    from .cluster import ClusterConfig, ServingCluster

    log = print if verbose else (lambda *args, **kwargs: None)

    traffic_config = ZipfTrafficConfig(
        num_users=1_000_000, num_items=200, num_requests=requests,
        rate=rate, max_length=18,
    )
    num_items = traffic_config.num_items
    schedule = chaos_schedule(
        ChaosScheduleConfig(
            num_requests=requests, num_faults=faults,
            kinds=("kill", "stall"),
        ),
        seed,
    )
    # Printed even in quiet mode: the one line that makes a CI failure
    # replayable.
    print(f"chaos drill: seed={seed}, {len(schedule)} scheduled faults "
          f"(replay: serve-smoke --chaos --seed {seed})")

    primary = VSAN(num_items=num_items, max_length=20, dim=16,
                   h1=1, h2=1, k=1, seed=seed)
    pop = POP(num_items).fit(SimpleNamespace(
        num_items=num_items,
        sequences=zipf_histories(
            ZipfCatalogConfig(num_users=32, num_items=num_items), seed
        ),
    ))

    def factory():
        return RecommendService(
            [("VSAN", primary), ("POP", pop)],
            num_items=num_items,
            config=ServiceConfig(top_n=10, deadline=2.0),
        )

    with ServingCluster(
        factory,
        config=ClusterConfig(
            num_shards=num_shards,
            replicas_per_shard=replicas_per_shard,
            batch_size=4, max_queue=256, deadline=2.0,
            worker_timeout=20.0,
            respawn=True, respawn_backoff=0.05,
            stall_timeout=0.3, heartbeat_interval=0.1,
        ),
    ) as cluster:
        log(f"cluster: {num_shards} shards x {replicas_per_shard} "
            f"replicas, {traffic_config.num_users:,} simulated users; "
            f"stall probe at 0.3s")
        report = run_chaos(
            cluster,
            zipf_traffic(traffic_config, seed),
            schedule,
            ChaosConfig(stall_seconds=0.9,
                        checkpoint_every=max(10, requests // 12)),
            log=log,
        )
        _require(report["faults_applied"] >= 5,
                 f"only {report['faults_applied']} faults fired; the "
                 f"drill needs >= 5 to mean anything")
        _require(report["failed"] == 0,
                 f"{report['failed']} requests failed — replica "
                 f"failover should have replayed them")
        _require(report["availability"] >= 0.9,
                 f"availability {report['availability']:.2%} < 90% "
                 f"under chaos")
        _require(report["recovered"],
                 "cluster did not recover full capacity after the "
                 f"faults: {cluster.stats()['cluster']}")
        _require(
            report["serving_shards"] == list(range(num_shards)),
            f"not every shard serves control traffic after recovery: "
            f"{report['serving_shards']}",
        )
        _require(report["probe_completed"] > 0,
                 "healed cluster served no probe traffic")
        _require(report["respawns"] >= 1,
                 "faults fired but the supervisor never respawned")
        _require(
            report["goodput"]["dip_depth"] is not None
            and report["goodput"]["dip_depth"] < 1.0,
            f"goodput fully stalled during the drill: "
            f"{report['goodput']}",
        )
        log(json.dumps(
            {key: report[key] for key in (
                "availability", "slo_attainment", "goodput", "respawns",
                "max_recovery_seconds", "wall_seconds",
            )},
            indent=2, sort_keys=True, default=str,
        ))
        # The one-line verdict is printed even in quiet mode.
        print(
            f"serve-smoke chaos OK: {report['faults_applied']} faults, "
            f"{report['completed']}/{report['submitted']} served, "
            f"0 failed, {report['respawns']} respawns, recovered in "
            f"<= {report['max_recovery_seconds']:.2f}s per death"
        )
    return 0
