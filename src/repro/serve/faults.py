"""Deterministic fault injection for exercising the serving layer.

A :class:`FaultInjector` wraps a seeded RNG and decides, per scoring
call, whether to inject a latency spike, raise an exception, or poison
the returned scores with NaN.  :class:`FaultyRecommender` plugs an
injector around any :class:`repro.models.base.Recommender`, so breaker
trips, fallback hops, retries, and the evaluator's non-finite guard can
all be driven on purpose — and reproducibly, because every decision
comes from the injector's seed.

File-level corruption helpers (:func:`truncate_file`, :func:`flip_byte`)
damage checkpoint archives the way real crashes and bit rot do, for
testing :class:`repro.nn.CheckpointError` paths.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from .errors import TransientError

__all__ = [
    "FaultInjector",
    "FaultyRecommender",
    "InjectedFault",
    "flip_byte",
    "truncate_file",
]


class InjectedFault(TransientError):
    """An exception raised on purpose by a :class:`FaultInjector`.

    Subclasses :class:`repro.serve.errors.TransientError` so the
    service's retry path is exercised too.
    """


class FaultInjector:
    """Seeded, per-call fault decisions.

    Args:
        error_rate: probability a call raises :class:`InjectedFault`.
        nan_rate: probability the returned scores are NaN-poisoned.
        latency_rate: probability a latency spike is injected.
        latency: duration of an injected spike, seconds.
        seed: seeds the decision stream (same seed → same faults).
        sleep: how a latency spike is realized; tests inject a fake
            clock's ``advance`` so nothing actually sleeps.

    The injector can be toggled (``disable()`` / ``enable()``) to model
    a fault that clears — e.g. to verify a breaker re-closes.
    """

    def __init__(
        self,
        error_rate: float = 0.0,
        nan_rate: float = 0.0,
        latency_rate: float = 0.0,
        latency: float = 0.05,
        seed: int = 0,
        sleep=time.sleep,
    ):
        for name, rate in (
            ("error_rate", error_rate),
            ("nan_rate", nan_rate),
            ("latency_rate", latency_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        self.error_rate = error_rate
        self.nan_rate = nan_rate
        self.latency_rate = latency_rate
        self.latency = latency
        self._rng = np.random.default_rng(seed)
        self._sleep = sleep
        self.enabled = True
        self.injected: dict[str, int] = {
            "error": 0, "nan": 0, "latency": 0,
        }

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        """Clear all faults (the decision stream keeps advancing)."""
        self.enabled = False

    # ------------------------------------------------------------------
    def before_call(self) -> None:
        """Run pre-scoring faults: latency spike, then maybe raise.

        Draws are taken even while disabled so enabling/disabling does
        not shift the decision stream of later calls.
        """
        spike = self._rng.uniform() < self.latency_rate
        fail = self._rng.uniform() < self.error_rate
        if not self.enabled:
            return
        if spike:
            self.injected["latency"] += 1
            self._sleep(self.latency)
        if fail:
            self.injected["error"] += 1
            raise InjectedFault("injected model failure")

    def poison(self, scores: np.ndarray) -> np.ndarray:
        """Maybe replace a slice of ``scores`` with NaN (copy-on-write)."""
        poison = self._rng.uniform() < self.nan_rate
        if not (self.enabled and poison):
            return scores
        self.injected["nan"] += 1
        poisoned = np.array(scores, dtype=np.float64, copy=True)
        # Poison a deterministic-but-scattered subset: every third entry
        # of every row, so both full-row and partial-NaN handling paths
        # are covered.
        poisoned[..., 1::3] = np.nan
        return poisoned


class FaultyRecommender:
    """Wrap any recommender with a :class:`FaultInjector`.

    Implements the scoring half of the
    :class:`repro.models.base.Recommender` protocol; ``fit`` delegates.
    """

    def __init__(self, inner, injector: FaultInjector):
        self.inner = inner
        self.injector = injector
        self.name = f"faulty({getattr(inner, 'name', type(inner).__name__)})"

    def fit(self, corpus):
        self.inner.fit(corpus)
        return self

    def score(self, history: np.ndarray) -> np.ndarray:
        return self.score_batch([history])[0]

    def score_batch(self, histories: list[np.ndarray]) -> np.ndarray:
        self.injector.before_call()
        scores = self.inner.score_batch(histories)
        return self.injector.poison(scores)

    # ------------------------------------------------------------------
    # Retrieval hooks: faults strike the model forward (hidden_last),
    # exactly where they strike dense scoring, so the two-stage path
    # degrades through the same breaker/retry/non-finite machinery.
    # ------------------------------------------------------------------
    @property
    def supports_retrieval(self) -> bool:
        return bool(getattr(self.inner, "supports_retrieval", False))

    def output_head(self):
        return self.inner.output_head()

    def hidden_last(self, histories) -> np.ndarray:
        self.injector.before_call()
        return self.injector.poison(self.inner.hidden_last(histories))

    def score_candidates(self, hidden, candidates) -> np.ndarray:
        return self.inner.score_candidates(hidden, candidates)


# ----------------------------------------------------------------------
# Checkpoint corruption helpers
# ----------------------------------------------------------------------

def truncate_file(path: str | Path, keep_fraction: float = 0.5) -> Path:
    """Truncate ``path`` to a fraction of its bytes (a half-written
    file, as left by a crash without atomic replace)."""
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError("keep_fraction must be in [0, 1)")
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: int(len(data) * keep_fraction)])
    return path


def flip_byte(path: str | Path, offset: int | None = None,
              seed: int = 0) -> Path:
    """XOR one byte of ``path`` (bit rot / torn write).  With no
    ``offset`` a seeded RNG picks one in the second half of the file,
    where ``.npz`` member payloads live."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"{path} is empty")
    if offset is None:
        rng = np.random.default_rng(seed)
        offset = int(rng.integers(len(data) // 2, len(data)))
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))
    return path
