"""Typed error taxonomy of the serving layer.

Every failure a caller of :class:`repro.serve.RecommendService` can see
is one of these (or :class:`repro.nn.CheckpointError`, re-exported here
for convenience), so integrations can branch on exception *type* instead
of parsing messages:

- :class:`InvalidRequest` — the request itself is malformed (empty
  history, unknown/negative item ids, bad ``top_n``); retrying the same
  request can never succeed.
- :class:`DeadlineExceeded` — the per-request time budget ran out before
  any rung produced a valid ranking.
- :class:`AllRungsFailed` — every rung of the fallback chain was open,
  errored, timed out, or emitted non-finite scores.  With a
  deterministic terminal rung (POP) this should never fire in practice.
- :class:`TransientError` — base class for failures worth retrying in
  place (e.g. a checkpoint hot-reload swapping weights mid-request);
  the service's retry policy only retries these.
"""

from __future__ import annotations

from ..nn.serialization import CheckpointError

__all__ = [
    "AllRungsFailed",
    "CheckpointError",
    "ClusterError",
    "DeadlineExceeded",
    "InvalidRequest",
    "ServeError",
    "TransientError",
]


class ServeError(RuntimeError):
    """Base class for every serving-layer failure."""


class InvalidRequest(ServeError, ValueError):
    """The request is malformed; no amount of retrying will help."""


class DeadlineExceeded(ServeError, TimeoutError):
    """The request's time budget expired before a valid ranking."""


class AllRungsFailed(ServeError):
    """No rung of the fallback chain produced a valid ranking.

    Carries ``causes`` — a ``{rung_name: reason}`` mapping describing
    why each rung was unusable for this request.
    """

    def __init__(self, message: str, causes: dict[str, str] | None = None):
        super().__init__(message)
        self.causes = dict(causes or {})


class TransientError(ServeError):
    """A failure expected to clear on its own; safe to retry in place."""


class ClusterError(ServeError):
    """A cluster control-plane operation failed (no live shards, a
    control message timed out, or a rollout could not be applied)."""
