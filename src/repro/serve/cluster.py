"""Sharded multi-process serving: the million-user cluster layer.

:class:`ServingCluster` runs N shard worker processes — each a full
:class:`repro.serve.RecommendService` (fallback chain, breakers,
retries, cumulative deadlines, optionally an
:class:`~repro.serve.engine.InferenceEngine` per rung) — behind a
consistent-hash user router in the parent:

- **Sharding** — :class:`ConsistentHashRing` maps each ``user_id`` to one
  shard via a seeded-stable blake2b ring with virtual nodes, so the
  same user always lands on the same shard (cache/affinity) and a dead
  shard's keyspace redistributes evenly over the survivors instead of
  rolling over onto one neighbour.
- **Workers** — shard processes come from
  :class:`repro.pool.ForkedWorkerPool` (the machinery the parallel
  trainer uses): ``fork`` inheritance hands every worker its replica of
  the live rung models with zero pickling, and teardown signals all
  workers before joining any against one shared deadline.
- **Admission control** — the router tracks per-shard queue depth and
  an EWMA of service time; a request whose predicted wait exceeds the
  deadline budget (times ``shed_margin``), or that would overflow
  ``max_queue``, is **shed** at the door — a fast typed rejection
  instead of a doomed queue entry (the shard's own cumulative deadline
  accounting would only reject it later, after it wasted queue time).
- **Failure** — a shard that dies (SIGKILL drill, OOM) is detected by
  pipe EOF: its in-flight requests are counted ``failed``, its unsent
  queue reroutes through the updated ring, and the ring drops it so new
  traffic flows to survivors.  The cluster never hangs on a dead shard.
- **Canary rollout** — :meth:`ServingCluster.rollout` hot-swaps a new
  model (object or checkpoint path, via the engine's ``set_model``
  version bump) one shard at a time, sends probe traffic, and declares
  the shard unhealthy unless every probe is served *by the swapped
  rung* with zero new breaker trips — on failure every already-swapped
  shard rolls back to its pre-canary model, in reverse order.
- **Accounting** — the parent keeps the cluster invariant
  ``submitted == completed + shed + failed (+ in-flight)`` while each
  shard keeps the single-process invariant; :meth:`ServingCluster.stats`
  merges the shard ``ServiceStats`` (:meth:`ServiceStats.merge`) so the
  fleet-wide snapshot satisfies ``accounted()`` exactly like one
  process would.

The open-loop load harness lives in :meth:`ServingCluster.run_load`:
it replays a seeded arrival schedule (e.g.
:func:`repro.data.synthetic.zipf_traffic` at 1M users) without waiting
for completions — arrivals keep coming whether or not the cluster keeps
up, which is what makes the measured p99 and shed rate honest.
"""

from __future__ import annotations

import hashlib
import os
import time
import traceback
from bisect import bisect_right
from dataclasses import dataclass, field
from multiprocessing import connection as _mpc

from ..pool import ForkedWorkerPool, WorkerError
from .errors import ClusterError, ServeError
from .stats import LatencyTracker, ServiceStats

__all__ = [
    "ClusterConfig",
    "ClusterError",
    "ConsistentHashRing",
    "RolloutReport",
    "ServingCluster",
]


class ConsistentHashRing:
    """Stable consistent hashing with virtual nodes.

    Points come from blake2b (not Python's salted ``hash()``), so the
    user → shard mapping is identical across processes and runs.  Each
    node owns ``replicas`` points on the ring; removing a node hands
    its arcs to the *next* points clockwise, which — with enough
    virtual nodes — spreads the orphaned keyspace over all survivors
    roughly evenly.
    """

    def __init__(self, nodes=(), replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self.nodes: set = set()
        self._points: list[int] = []
        self._owners: list = []
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.blake2b(key.encode("utf8"), digest_size=8)
        return int.from_bytes(digest.digest(), "big")

    def add(self, node) -> None:
        if node in self.nodes:
            return
        self.nodes.add(node)
        for replica in range(self.replicas):
            point = self._hash(f"{node}#{replica}")
            index = bisect_right(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node) -> None:
        if node not in self.nodes:
            return
        self.nodes.discard(node)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    def lookup(self, key):
        """The node owning ``key`` (``None`` on an empty ring)."""
        if not self._points:
            return None
        point = self._hash(str(key))
        index = bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def __len__(self) -> int:
        return len(self.nodes)


@dataclass
class ClusterConfig:
    """Router policy knobs.

    Args:
        num_shards: shard worker processes to fork.
        replicas: virtual nodes per shard on the hash ring.
        max_queue: hard cap on per-shard outstanding requests (queued +
            in flight); submissions beyond it are shed.
        deadline: the per-request budget the *router* sheds against
            (``None`` disables predicted-wait shedding; the shards'
            own ``ServiceConfig.deadline`` still applies in-service).
        shed_margin: shed when ``predicted_wait > shed_margin *
            deadline`` — < 1 sheds conservatively early, > 1 tolerates
            brief overloads.
        batch_size: requests coalesced into one pipe message per shard
            (shard-side micro-batching then applies within the
            service's engine, when configured).
        worker_timeout: seconds a control message may wait on a shard
            before the shard is declared hung.
        top_n: ranking length forwarded with every request (``None`` =
            the shard service's default).
        ewma_alpha: smoothing for the per-shard service-time estimate
            driving predicted-wait shedding.
    """

    num_shards: int = 2
    replicas: int = 64
    max_queue: int = 64
    deadline: float | None = None
    shed_margin: float = 1.0
    batch_size: int = 32
    worker_timeout: float = 30.0
    top_n: int | None = None
    ewma_alpha: float = 0.2

    def __post_init__(self):
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if self.shed_margin <= 0:
            raise ValueError("shed_margin must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.worker_timeout <= 0:
            raise ValueError("worker_timeout must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")


@dataclass
class RolloutReport:
    """Outcome of one canary rollout."""

    ok: bool
    rung: str
    swapped: list = field(default_factory=list)
    rolled_back: bool = False
    failed_shard: int | None = None
    reason: str | None = None


def _serve_batch(service, entries, top_n):
    """Run one coalesced batch through the shard's service."""
    replies = []
    histories = [history for _, history in entries]
    results = service.recommend_many(histories, top_n=top_n)
    for (request_id, _), outcome in zip(entries, results):
        if isinstance(outcome, ServeError):
            replies.append((
                request_id, False,
                (type(outcome).__name__, str(outcome)),
            ))
        else:
            replies.append((
                request_id, True,
                (outcome.items, outcome.rung, outcome.latency,
                 outcome.degraded, outcome.fallbacks),
            ))
    return replies


def _shard_loop(index, conn, service_factory, registry) -> None:
    """Body of one shard worker (runs in the forked child).

    The service — and every rung model it wraps — is built/inherited
    *inside* the child, so shards are fully independent replicas.
    ``stash`` keeps each rung's pre-canary model so a ``rollback``
    message can restore it without shipping models back over the pipe.
    """
    try:
        service = service_factory()
        stash: dict = {}
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "batch":
                conn.send(
                    ("results", _serve_batch(service, message[1], message[2]))
                )
            elif kind == "probe":
                conn.send(
                    ("probed", _serve_batch(service, message[1], message[2]))
                )
            elif kind == "stats":
                conn.send(("stats", service.raw_stats(), service.stats()))
            elif kind == "describe":
                conn.send(("described", service.describe_rungs()))
            elif kind == "swap":
                _, rung, payload = message
                try:
                    previous = service.current_model(rung)
                    if isinstance(payload, (str, os.PathLike)):
                        service.reload_rung(rung, payload, registry or {})
                    else:
                        service.swap_model(rung, payload)
                    # Keep the *oldest* pre-canary model: two swaps
                    # without a rollback still roll back to the model
                    # that predates the whole rollout.
                    stash.setdefault(rung, previous)
                    conn.send(("swapped", service.describe_rungs()[rung]))
                except Exception as error:  # noqa: BLE001 — report, don't die
                    conn.send((
                        "swap_failed",
                        f"{type(error).__name__}: {error}",
                    ))
            elif kind == "rollback":
                for rung, model in stash.items():
                    service.swap_model(rung, model)
                stash.clear()
                conn.send(("rolled_back", service.describe_rungs()))
            elif kind == "stop":
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown message {kind!r}")
    except (EOFError, KeyboardInterrupt):  # parent went away
        return
    except Exception:  # surface the traceback in the parent
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:
            pass


class _Inflight:
    __slots__ = ("user", "submitted")

    def __init__(self, user, submitted: float):
        self.user = user
        self.submitted = submitted


class ServingCluster:
    """N shard services behind a consistent-hash router.

    Args:
        service_factory: zero-argument callable building one
            :class:`~repro.serve.RecommendService`; called *inside*
            each forked shard, so models built before construction are
            inherited copy-on-write (never pickled).
        config: :class:`ClusterConfig` router policy.
        registry: ``{class_name: class}`` map for checkpoint-path
            rollouts (forwarded to ``reload_rung``).
        clock: injectable wall clock (latency accounting).

    Data plane: :meth:`submit` routes/sheds/queues one request,
    :meth:`pump` drains ready replies, :meth:`drain` settles everything
    outstanding.  Control plane: :meth:`stats`, :meth:`rollout`,
    :meth:`kill_shard` (fault drill), :meth:`close`.
    """

    def __init__(
        self,
        service_factory,
        config: ClusterConfig | None = None,
        registry: dict | None = None,
        clock=time.monotonic,
    ):
        self.config = config or ClusterConfig()
        self._clock = clock
        self.pool = ForkedWorkerPool(role="shard worker")
        for _ in range(self.config.num_shards):
            self.pool.spawn(_shard_loop, service_factory, registry)
        shard_ids = list(range(self.config.num_shards))
        self.ring = ConsistentHashRing(
            shard_ids, replicas=self.config.replicas
        )
        self._live: set[int] = set(shard_ids)
        self._pending: dict[int, list] = {s: [] for s in shard_ids}
        self._inflight: dict[int, dict] = {s: {} for s in shard_ids}
        self._ewma: dict[int, float | None] = {s: None for s in shard_ids}
        self._next_id = 0
        self.submitted = 0
        self.completed = 0
        self.shed = 0
        self.failed = 0
        self.latency = LatencyTracker(capacity=65536)
        self.records: list[tuple] = []
        self.keep_records = True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ServingCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Tear the shard pool down (signal-all, shared join deadline)."""
        self.pool.stop()
        self._live.clear()

    @property
    def live_shards(self) -> list[int]:
        return sorted(self._live)

    @property
    def inflight(self) -> int:
        return sum(len(entries) for entries in self._inflight.values()) + \
            sum(len(entries) for entries in self._pending.values())

    def accounted(self) -> bool:
        """The cluster-level invariant: every submission is completed,
        shed, failed, or still in flight."""
        return self.submitted == (
            self.completed + self.shed + self.failed + self.inflight
        )

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def submit(self, user, history) -> str:
        """Route one request; returns ``"queued"`` or ``"shed"``
        (``"failed"`` when no shard is live).

        Shedding happens *here*, at admission: a request that would
        overflow the shard's queue, or whose predicted wait
        (queue depth × EWMA service time) already exceeds the deadline
        budget, is refused immediately instead of queued to die.
        """
        self.submitted += 1
        shard = self.ring.lookup(user)
        if shard is None:
            self.failed += 1
            self._record(None, user, "failed", None, None)
            return "failed"
        depth = len(self._pending[shard]) + len(self._inflight[shard])
        config = self.config
        if depth >= config.max_queue:
            self.shed += 1
            self._record(shard, user, "shed", None, None)
            return "shed"
        ewma = self._ewma[shard]
        if (
            config.deadline is not None
            and ewma is not None
            and (depth + 1) * ewma > config.shed_margin * config.deadline
        ):
            self.shed += 1
            self._record(shard, user, "shed", None, None)
            return "shed"
        request_id = self._next_id
        self._next_id += 1
        self._pending[shard].append((request_id, user, history))
        if len(self._pending[shard]) >= config.batch_size:
            self._flush_shard(shard)
        return "queued"

    def flush(self) -> None:
        """Send every queued request to its shard."""
        for shard in list(self._live):
            if self._pending[shard]:
                self._flush_shard(shard)

    def pump(self, timeout: float = 0.0) -> int:
        """Drain ready shard replies; returns completions processed."""
        before = self.completed + self.failed
        for shard in self._wait_ready(timeout):
            self._read_shard(shard)
        return (self.completed + self.failed) - before

    def drain(self, timeout: float = 30.0) -> None:
        """Flush and settle every outstanding request.

        A shard that stops answering within ``timeout`` is declared
        dead (its in-flight requests become ``failed``) — the cluster
        sheds rather than hangs.
        """
        self.flush()
        deadline = self._clock() + timeout
        while self.inflight and self._clock() < deadline:
            self.flush()
            if not self.pump(timeout=0.05):
                # Nothing arrived: check for silently-dead shards.
                for shard in list(self._live):
                    if not self.pool.alive(shard):
                        self._shard_died(shard)
        if self.inflight:  # pragma: no cover - hung-shard escalation
            for shard in list(self._live):
                if self._inflight[shard] or self._pending[shard]:
                    self.pool.kill(shard)
                    self._shard_died(shard)

    def _flush_shard(self, shard: int) -> None:
        batch = self._pending[shard]
        if not batch:
            return
        self._pending[shard] = []
        now = self._clock()
        entries = [(rid, history) for rid, _, history in batch]
        for rid, user, _ in batch:
            self._inflight[shard][rid] = _Inflight(user, now)
        try:
            self.pool.send(
                shard, ("batch", entries, self.config.top_n)
            )
        except WorkerError:
            self._shard_died(shard)

    def _wait_ready(self, timeout: float) -> list[int]:
        by_conn = {
            self.pool.connections[shard]: shard
            for shard in sorted(self._live)
        }
        if not by_conn:
            return []
        ready = _mpc.wait(list(by_conn), timeout=timeout)
        return [by_conn[conn] for conn in ready]

    def _read_shard(self, shard: int) -> None:
        try:
            message = self.pool.connections[shard].recv()
        except (EOFError, OSError):
            self._shard_died(shard)
            return
        self._dispatch(shard, message)

    def _dispatch(self, shard: int, message) -> None:
        kind = message[0]
        if kind == "results":
            self._absorb_results(shard, message[1])
        elif kind == "error":
            # The shard's loop itself broke: nothing more will come.
            self.pool.kill(shard)
            self._shard_died(shard)
            raise WorkerError(
                f"shard worker {shard} raised:\n{message[1]}"
            )
        else:  # pragma: no cover - protocol guard
            raise WorkerError(
                f"shard worker {shard} sent unexpected {kind!r}"
            )

    def _absorb_results(self, shard: int, replies) -> None:
        now = self._clock()
        config = self.config
        for request_id, ok, payload in replies:
            entry = self._inflight[shard].pop(request_id, None)
            if entry is None:  # pragma: no cover - protocol guard
                continue
            self.completed += 1
            round_trip = now - entry.submitted
            self.latency.add(round_trip)
            if ok:
                # EWMA on the *service-side* latency (payload[2]):
                # round-trip includes queueing, which would feed back
                # into the shed predictor and over-shed.
                service_time = payload[2]
                previous = self._ewma[shard]
                self._ewma[shard] = service_time if previous is None else (
                    (1.0 - config.ewma_alpha) * previous
                    + config.ewma_alpha * service_time
                )
                self._record(
                    shard, entry.user, "ok", payload[1], round_trip
                )
            else:
                self._record(
                    shard, entry.user, f"error:{payload[0]}", None,
                    round_trip,
                )

    def _shard_died(self, shard: int) -> None:
        if shard not in self._live:
            return
        self._live.discard(shard)
        self.ring.remove(shard)
        # In-flight work died with the shard.
        for request_id, entry in self._inflight[shard].items():
            self.failed += 1
            self._record(shard, entry.user, "failed", None, None)
        self._inflight[shard].clear()
        # Unsent work never left the router: reroute via the new ring.
        orphans = self._pending[shard]
        self._pending[shard] = []
        for request_id, user, history in orphans:
            self.submitted -= 1  # re-submission will recount it
            self.submit(user, history)

    def _record(self, shard, user, status, rung, latency) -> None:
        if self.keep_records:
            self.records.append((shard, user, status, rung, latency))

    # ------------------------------------------------------------------
    # Fault drill
    # ------------------------------------------------------------------
    def kill_shard(self, shard: int) -> None:
        """SIGKILL one shard worker mid-run (drill hook).  Discovery is
        left to the data path: the next read sees EOF, fails the
        shard's in-flight requests, reroutes its queue, and shrinks the
        ring — exactly what a real OOM kill would exercise."""
        self.pool.kill(shard)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _control(self, shard: int, message, expected: tuple):
        """Send a control message and wait for its reply, absorbing any
        interleaved data-plane results (pipes are FIFO)."""
        try:
            self.pool.send(shard, message)
        except WorkerError:
            self._shard_died(shard)
            raise ClusterError(
                f"shard {shard} died before {message[0]!r}"
            ) from None
        deadline = self._clock() + self.config.worker_timeout
        connection = self.pool.connections[shard]
        while self._clock() < deadline:
            if not connection.poll(0.05):
                if not self.pool.alive(shard):
                    self._shard_died(shard)
                    raise ClusterError(
                        f"shard {shard} died during {message[0]!r}"
                    )
                continue
            try:
                reply = connection.recv()
            except (EOFError, OSError):
                self._shard_died(shard)
                raise ClusterError(
                    f"shard {shard} died during {message[0]!r}"
                ) from None
            if reply[0] == "results":
                self._absorb_results(shard, reply[1])
                continue
            if reply[0] in expected:
                return reply
            if reply[0] == "error":
                self.pool.kill(shard)
                self._shard_died(shard)
                raise WorkerError(
                    f"shard worker {shard} raised:\n{reply[1]}"
                )
            raise ClusterError(  # pragma: no cover - protocol guard
                f"shard {shard} sent {reply[0]!r}, expected {expected}"
            )
        raise ClusterError(
            f"shard {shard} sent no {expected} reply within "
            f"{self.config.worker_timeout:.0f}s"
        )

    def describe(self) -> dict[int, dict]:
        """Per-shard, per-rung model identity (class name + version)."""
        return {
            shard: self._control(shard, ("describe",), ("described",))[1]
            for shard in sorted(self._live)
        }

    def stats(self) -> dict:
        """Cluster-wide snapshot: router accounting plus the merged
        shard ``ServiceStats`` (which must satisfy the same
        ``accounted()`` invariant as a single process)."""
        merged = ServiceStats([])
        per_shard = {}
        for shard in sorted(self._live):
            reply = self._control(shard, ("stats",), ("stats",))
            merged.merge(reply[1])
            per_shard[shard] = reply[2]
        return {
            "cluster": {
                "submitted": self.submitted,
                "completed": self.completed,
                "shed": self.shed,
                "failed": self.failed,
                "inflight": self.inflight,
                "accounted": self.accounted(),
                "live_shards": self.live_shards,
                "latency": self.latency.summary(),
            },
            "service": merged.snapshot(),
            "per_shard": per_shard,
        }

    def merged_service_stats(self) -> ServiceStats:
        """The raw merged :class:`ServiceStats` across live shards."""
        merged = ServiceStats([])
        for shard in sorted(self._live):
            merged.merge(self._control(shard, ("stats",), ("stats",))[1])
        return merged

    # ------------------------------------------------------------------
    # Canary rollout
    # ------------------------------------------------------------------
    def rollout(
        self,
        rung: str,
        model_or_path,
        probe_histories,
        probes_per_shard: int = 8,
    ) -> RolloutReport:
        """Rolling canary hot-swap of ``rung`` across all live shards.

        One shard at a time: swap (object or checkpoint path — the
        engine's ``set_model`` version bump invalidates that shard's
        score cache), then replay ``probes_per_shard`` probe requests
        directly at the shard.  The shard is healthy only if **every**
        probe is served *by the swapped rung* (no degraded fallbacks)
        and the rung's breaker records **zero new trips**.  Any
        unhealthy shard aborts the rollout and rolls every
        already-swapped shard back to its pre-canary model, in reverse
        order.  Probe traffic is accounted shard-side like any other
        traffic but does not touch the router's counters.
        """
        probe_histories = list(probe_histories)
        if not probe_histories:
            raise ValueError("rollout needs at least one probe history")
        report = RolloutReport(ok=True, rung=rung)
        for shard in sorted(self._live):
            reply = self._control(
                shard, ("swap", rung, model_or_path),
                ("swapped", "swap_failed"),
            )
            if reply[0] == "swap_failed":
                report.ok = False
                report.failed_shard = shard
                report.reason = f"swap failed: {reply[1]}"
                break
            report.swapped.append(shard)
            healthy, reason = self._probe_shard(
                shard, rung, probe_histories, probes_per_shard
            )
            if not healthy:
                report.ok = False
                report.failed_shard = shard
                report.reason = reason
                break
        if not report.ok and report.swapped:
            for shard in reversed(report.swapped):
                if shard in self._live:
                    self._control(shard, ("rollback",), ("rolled_back",))
            report.rolled_back = True
        return report

    def _probe_shard(
        self, shard: int, rung: str, probe_histories, probes: int
    ) -> tuple[bool, str | None]:
        before = self._control(shard, ("stats",), ("stats",))[2]
        trips_before = self._breaker_trips(before, rung)
        entries = [
            (index, probe_histories[index % len(probe_histories)])
            for index in range(probes)
        ]
        reply = self._control(
            shard, ("probe", entries, self.config.top_n), ("probed",)
        )
        for _, ok, payload in reply[1]:
            if not ok:
                return False, (
                    f"probe failed on shard {shard}: "
                    f"{payload[0]}: {payload[1]}"
                )
            if payload[1] != rung:
                return False, (
                    f"probe degraded past the canary on shard {shard}: "
                    f"served by {payload[1]!r}, expected {rung!r}"
                )
        after = self._control(shard, ("stats",), ("stats",))[2]
        trips_after = self._breaker_trips(after, rung)
        if trips_after > trips_before:
            return False, (
                f"breaker tripped on shard {shard} during probes "
                f"({trips_after - trips_before} new trips)"
            )
        return True, None

    @staticmethod
    def _breaker_trips(snapshot: dict, rung: str) -> int:
        breaker = snapshot.get("rungs", {}).get(rung, {}).get("breaker")
        return int(breaker.get("times_opened", 0)) if breaker else 0

    # ------------------------------------------------------------------
    # Open-loop load harness
    # ------------------------------------------------------------------
    def run_load(
        self,
        traffic,
        pace: bool = False,
        sleep=time.sleep,
        drain_timeout: float = 30.0,
    ) -> dict:
        """Replay an arrival schedule open-loop and report the run.

        ``traffic`` yields ``(user_id, history, arrival_time)`` with
        arrival times in seconds from the start of the run (e.g.
        :func:`repro.data.synthetic.zipf_traffic`).  Open loop means
        arrivals are *not* gated on completions: each is submitted at
        its scheduled time (when ``pace`` is true; as fast as possible
        otherwise), the router sheds what the fleet cannot absorb, and
        replies are drained opportunistically between submissions.

        Returns a report with sustained throughput (completions /
        wall-clock), the round-trip latency summary (p50/p95/p99), shed
        and failure counts, and both accounting invariants.
        """
        started = self._clock()
        offered = 0
        for user, history, arrival in traffic:
            if pace:
                lag = arrival - (self._clock() - started)
                if lag > 0:
                    sleep(lag)
            self.submit(user, history)
            offered += 1
            self.pump(timeout=0.0)
        self.drain(timeout=drain_timeout)
        wall = max(self._clock() - started, 1e-9)
        merged = self.merged_service_stats()
        return {
            "offered": offered,
            "wall_seconds": round(wall, 4),
            "sustained_rps": round(self.completed / wall, 2),
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "latency": self.latency.summary(),
            "cluster_accounted": self.accounted(),
            "service_accounted": merged.accounted(),
            "live_shards": self.live_shards,
        }
