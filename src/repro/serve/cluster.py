"""Sharded multi-process serving: the self-healing million-user cluster.

:class:`ServingCluster` runs N shard key-ranges, each served by a
**replica group** of R forked worker processes — every worker a full
:class:`repro.serve.RecommendService` (fallback chain, breakers,
retries, cumulative deadlines, optionally an
:class:`~repro.serve.engine.InferenceEngine` per rung) — behind a
consistent-hash user router in the parent:

- **Sharding** — :class:`ConsistentHashRing` maps each ``user_id`` to one
  shard via a seeded-stable blake2b ring with virtual nodes, so the
  same user always lands on the same shard (cache/affinity) and a dead
  shard's keyspace redistributes evenly over the survivors instead of
  rolling over onto one neighbour.
- **Replica groups** — ``ClusterConfig(replicas_per_shard=R)`` forks R
  workers per shard; batches round-robin across the group.  Serving is
  stateless, so when one replica dies its in-flight and queued work is
  **failed over** (replayed) to a surviving replica — a replicated
  shard loses zero requests to a single SIGKILL, including mid-rollout.
- **Supervised respawn** — worker death is detected by pipe EOF and by
  an active health probe (:meth:`ServingCluster.maintain`): a stalled
  batch or an unanswered heartbeat ping past ``stall_timeout`` gets the
  wedged-but-alive worker killed instead of hanging the router.  Dead
  workers are replaced via :meth:`repro.pool.ForkedWorkerPool.spawn`
  with capped exponential backoff, warm-loaded with the committed
  rollout state (canary models included), and the shard rejoins the
  ring.  A crash-looping shard trips a **flap-breaker** after
  ``flap_threshold`` deaths inside ``flap_window`` seconds and degrades
  to shed-at-admission instead of fork-bombing the box.
- **Admission control** — the router tracks per-shard queue depth and
  an EWMA of service time; a request whose predicted wait exceeds the
  deadline budget (times ``shed_margin``), or that would overflow
  ``max_queue``, is **shed** at the door — a fast typed rejection
  instead of a doomed queue entry.
- **Total loss** — when a whole replica group is gone (and respawn is
  off or flapped), in-flight work is counted ``failed``, queued work
  reroutes through the shrunken ring, and an empty ring fails requests
  at admission.  The cluster never hangs: :meth:`ServingCluster.drain`
  guarantees every submitted request reaches a terminal state.
- **Canary rollout** — :meth:`ServingCluster.rollout` hot-swaps a new
  model one shard at a time (every replica in the group), probes each
  replica, and rolls every already-swapped shard back on any failure.
  A fully-successful rollout is **committed**: replicas drop their
  rollback stash and respawned workers warm-load the new model.
- **Accounting** — the parent keeps the cluster invariant
  ``submitted == completed + shed + failed (+ in-flight)`` while each
  shard keeps the single-process invariant; :meth:`ServingCluster.stats`
  merges the worker ``ServiceStats`` (:meth:`ServiceStats.merge`) so the
  fleet-wide snapshot satisfies ``accounted()`` exactly like one
  process would.  Deadline SLO attainment (fraction of submissions
  completing inside ``deadline``) is tracked alongside.

The open-loop load harness lives in :meth:`ServingCluster.run_load`;
the seeded fault-injection harness that proves the self-healing story
lives in :mod:`repro.serve.chaos`.
"""

from __future__ import annotations

import hashlib
import os
import time
import traceback
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as _mpc

from ..pool import ForkedWorkerPool, WorkerError
from .errors import ClusterError, ServeError
from .stats import LatencyTracker, ServiceStats

__all__ = [
    "ClusterConfig",
    "ClusterError",
    "ConsistentHashRing",
    "RolloutReport",
    "ServingCluster",
]


class ConsistentHashRing:
    """Stable consistent hashing with virtual nodes.

    Points come from blake2b (not Python's salted ``hash()``), so the
    user → shard mapping is identical across processes and runs.  Each
    node owns ``replicas`` points on the ring; removing a node hands
    its arcs to the *next* points clockwise, which — with enough
    virtual nodes — spreads the orphaned keyspace over all survivors
    roughly evenly.  Because points are a pure function of the node
    name, a removed node that is later re-added reclaims **exactly**
    the arcs it owned before — rejoin churn is bounded to the keys the
    node originally served.
    """

    def __init__(self, nodes=(), replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self.nodes: set = set()
        self._points: list[int] = []
        self._owners: list = []
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.blake2b(key.encode("utf8"), digest_size=8)
        return int.from_bytes(digest.digest(), "big")

    def add(self, node) -> None:
        if node in self.nodes:
            return
        self.nodes.add(node)
        for replica in range(self.replicas):
            point = self._hash(f"{node}#{replica}")
            index = bisect_right(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node) -> None:
        if node not in self.nodes:
            return
        self.nodes.discard(node)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    def lookup(self, key):
        """The node owning ``key`` (``None`` on an empty ring)."""
        if not self._points:
            return None
        point = self._hash(str(key))
        index = bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def __len__(self) -> int:
        return len(self.nodes)


@dataclass
class ClusterConfig:
    """Router and supervisor policy knobs.

    Args:
        num_shards: shard key-ranges on the ring.
        replicas: virtual nodes per shard on the hash ring.
        max_queue: hard cap on per-shard outstanding requests (queued +
            in flight across the replica group); submissions beyond it
            are shed.
        deadline: the per-request budget the *router* sheds against and
            scores SLO attainment with (``None`` disables both; the
            shards' own ``ServiceConfig.deadline`` still applies
            in-service).
        shed_margin: shed when ``predicted_wait > shed_margin *
            deadline`` — < 1 sheds conservatively early, > 1 tolerates
            brief overloads.
        batch_size: requests coalesced into one pipe message per shard
            (shard-side micro-batching then applies within the
            service's engine, when configured).
        worker_timeout: seconds a control message may wait on a worker
            before the worker is declared hung.
        top_n: ranking length forwarded with every request (``None`` =
            the shard service's default).
        ewma_alpha: smoothing for the per-shard service-time estimate
            driving predicted-wait shedding.
        replicas_per_shard: worker processes per shard key-range.  With
            R >= 2 a single worker death fails over in-flight work to a
            surviving replica instead of failing it.
        respawn: supervise worker deaths and fork replacements (warm
            loading committed rollout state, rejoining the ring).  Off,
            a dead group's capacity is gone for the process lifetime —
            the pre-self-healing behaviour, kept for kill drills.
        respawn_backoff: base seconds before a replacement fork; doubles
            per recent death on the shard (capped at
            ``respawn_backoff_max``).
        respawn_backoff_max: cap on the exponential respawn backoff.
        flap_window: seconds over which worker deaths on one shard are
            counted against ``flap_threshold``.
        flap_threshold: deaths within ``flap_window`` that trip the
            flap-breaker: the shard stops respawning and degrades to
            shed/fail-at-admission instead of fork-bombing.
        stall_timeout: enables active health probing when set — a
            worker whose oldest outstanding batch (or heartbeat ping)
            is older than this many seconds is declared wedged and
            killed.  ``None`` (default) keeps probing off.
        heartbeat_interval: idle seconds before an idle worker is sent
            a heartbeat ping (only with ``stall_timeout`` set).
    """

    num_shards: int = 2
    replicas: int = 64
    max_queue: int = 64
    deadline: float | None = None
    shed_margin: float = 1.0
    batch_size: int = 32
    worker_timeout: float = 30.0
    top_n: int | None = None
    ewma_alpha: float = 0.2
    replicas_per_shard: int = 1
    respawn: bool = True
    respawn_backoff: float = 0.05
    respawn_backoff_max: float = 2.0
    flap_window: float = 30.0
    flap_threshold: int = 5
    stall_timeout: float | None = None
    heartbeat_interval: float = 1.0

    def __post_init__(self):
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if self.shed_margin <= 0:
            raise ValueError("shed_margin must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.worker_timeout <= 0:
            raise ValueError("worker_timeout must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.replicas_per_shard < 1:
            raise ValueError("replicas_per_shard must be >= 1")
        if self.respawn_backoff <= 0:
            raise ValueError("respawn_backoff must be positive")
        if self.respawn_backoff_max < self.respawn_backoff:
            raise ValueError(
                "respawn_backoff_max must be >= respawn_backoff"
            )
        if self.flap_window <= 0:
            raise ValueError("flap_window must be positive")
        if self.flap_threshold < 1:
            raise ValueError("flap_threshold must be >= 1")
        if self.stall_timeout is not None and self.stall_timeout <= 0:
            raise ValueError("stall_timeout must be positive (or None)")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")


@dataclass
class RolloutReport:
    """Outcome of one canary rollout."""

    ok: bool
    rung: str
    swapped: list = field(default_factory=list)
    rolled_back: bool = False
    failed_shard: int | None = None
    reason: str | None = None


def _serve_batch(service, entries, top_n):
    """Run one coalesced batch through the shard's service."""
    replies = []
    histories = [history for _, history in entries]
    results = service.recommend_many(histories, top_n=top_n)
    for (request_id, _), outcome in zip(entries, results):
        if isinstance(outcome, ServeError):
            replies.append((
                request_id, False,
                (type(outcome).__name__, str(outcome)),
            ))
        else:
            replies.append((
                request_id, True,
                (outcome.items, outcome.rung, outcome.latency,
                 outcome.degraded, outcome.fallbacks),
            ))
    return replies


def _shard_loop(
    index, conn, service_factory, registry, engine_override=None
) -> None:
    """Body of one shard worker (runs in the forked child).

    The service — and every rung model it wraps — is built/inherited
    *inside* the child, so workers are fully independent replicas.
    ``stash`` keeps each rung's pre-canary model so a ``rollback``
    message can restore it without shipping models back over the pipe;
    ``commit`` drops the stash once a rollout has fully succeeded, so a
    later rollback never resurrects a model from *before* an already
    accepted rollout.  ``ping`` answers the supervisor's liveness
    probe; ``stall`` is the chaos hook that wedges the worker without
    killing it.
    """
    try:
        service = service_factory()
        if engine_override is not None:
            service.set_engine_config(engine_override)
        stash: dict = {}
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "batch":
                conn.send(
                    ("results", _serve_batch(service, message[1], message[2]))
                )
            elif kind == "probe":
                conn.send(
                    ("probed", _serve_batch(service, message[1], message[2]))
                )
            elif kind == "ping":
                conn.send(("pong", message[1]))
            elif kind == "stall":
                # Chaos hook: wedged-but-alive.  No reply — from the
                # router's side the worker simply goes quiet.
                time.sleep(message[1])
            elif kind == "stats":
                conn.send(("stats", service.raw_stats(), service.stats()))
            elif kind == "describe":
                conn.send(("described", service.describe_rungs()))
            elif kind == "swap":
                _, rung, payload = message
                try:
                    previous = service.current_model(rung)
                    if isinstance(payload, (str, os.PathLike)):
                        service.reload_rung(rung, payload, registry or {})
                    else:
                        service.swap_model(rung, payload)
                    # Keep the *oldest* uncommitted model: two swaps
                    # without a commit/rollback still roll back to the
                    # model that predates the whole rollout.
                    stash.setdefault(rung, previous)
                    conn.send(("swapped", service.describe_rungs()[rung]))
                except Exception as error:  # noqa: BLE001 — report, don't die
                    conn.send((
                        "swap_failed",
                        f"{type(error).__name__}: {error}",
                    ))
            elif kind == "warm":
                # Pre-trace compiled scoring programs for the router's
                # hot batch sizes before this replica takes traffic.
                conn.send(("warmed", service.warm_programs(message[1])))
            elif kind == "rollback":
                for rung, model in stash.items():
                    service.swap_model(rung, model)
                stash.clear()
                conn.send(("rolled_back", service.describe_rungs()))
            elif kind == "commit":
                stash.clear()
                conn.send(("committed",))
            elif kind == "stop":
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown message {kind!r}")
    except (EOFError, KeyboardInterrupt):  # parent went away
        return
    except Exception:  # surface the traceback in the parent
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:
            pass


class _Inflight:
    __slots__ = ("user", "history", "submitted")

    def __init__(self, user, history, submitted: float):
        self.user = user
        self.history = history
        self.submitted = submitted


class ServingCluster:
    """N shard replica groups behind a consistent-hash router.

    Args:
        service_factory: zero-argument callable building one
            :class:`~repro.serve.RecommendService`; called *inside*
            each forked worker, so models built before construction are
            inherited copy-on-write (never pickled).
        config: :class:`ClusterConfig` router/supervisor policy.
        registry: ``{class_name: class}`` map for checkpoint-path
            rollouts (forwarded to ``reload_rung``).
        clock: injectable wall clock (latency accounting).
        engine_overrides: optional ``{shard: EngineConfig}`` map giving
            individual shards a different engine configuration than the
            factory default (e.g. a retrieval index or a bigger cache
            on hot shards only).  Applied inside every worker of that
            shard's replica group via ``set_engine_config``.

    Data plane: :meth:`submit` routes/sheds/queues one request,
    :meth:`pump` drains ready replies (and runs one supervisor tick),
    :meth:`drain` settles everything outstanding.  Control plane:
    :meth:`stats`, :meth:`rollout`, :meth:`maintain`, :meth:`close`.
    Fault drills: :meth:`kill_shard`, :meth:`kill_replica`,
    :meth:`stall_replica`.
    """

    def __init__(
        self,
        service_factory,
        config: ClusterConfig | None = None,
        registry: dict | None = None,
        clock=time.monotonic,
        engine_overrides: dict | None = None,
    ):
        self.config = config or ClusterConfig()
        self._clock = clock
        self._factory = service_factory
        self._registry = registry
        self.engine_overrides = dict(engine_overrides or {})
        for shard in self.engine_overrides:
            if not 0 <= shard < self.config.num_shards:
                raise ValueError(
                    f"engine_overrides keys must be shard ids in "
                    f"[0, {self.config.num_shards}); got {shard!r}"
                )
        self.pool = ForkedWorkerPool(role="shard worker")
        shard_ids = list(range(self.config.num_shards))
        # Worker-level books, keyed by pool index (stable across the
        # process lifetime; respawned replacements get fresh indices).
        self._worker_shard: dict[int, int] = {}
        self._inflight: dict[int, dict] = {}
        self._dispatches: dict[int, deque] = {}
        self._last_contact: dict[int, float] = {}
        self._ping_at: dict[int, float | None] = {}
        self._live_workers: set[int] = set()
        # Shard-level books.
        self._groups: dict[int, list[int]] = {s: [] for s in shard_ids}
        self._pending: dict[int, list] = {s: [] for s in shard_ids}
        self._ewma: dict[int, float | None] = {s: None for s in shard_ids}
        self._rr: dict[int, int] = {s: 0 for s in shard_ids}
        self._deaths: dict[int, list[float]] = {s: [] for s in shard_ids}
        self._respawn_at: dict[int, float | None] = {
            s: None for s in shard_ids
        }
        self._flapped: set[int] = set()
        # Committed rollout payloads per shard, replayed into respawned
        # workers so replacements serve the same model versions as
        # their peers (the pipe pickles these exactly like a swap).
        self._swaps: dict[int, dict] = {s: {} for s in shard_ids}
        # Flush-size histogram per shard: the router's view of which
        # shape buckets are hot, replayed into respawned workers so
        # they pre-trace those compiled programs before taking traffic.
        self._hot_batches: dict[int, dict[int, int]] = {
            s: {} for s in shard_ids
        }
        for shard in shard_ids:
            for _ in range(self.config.replicas_per_shard):
                self._spawn_worker(shard)
        self.ring = ConsistentHashRing(
            shard_ids, replicas=self.config.replicas
        )
        self._next_id = 0
        self.submitted = 0
        self.completed = 0
        self.shed = 0
        self.failed = 0
        self.slo_met = 0
        self.respawns = 0
        self.events: list[dict] = []
        self.latency = LatencyTracker(capacity=65536)
        self.records: list[tuple] = []
        self.keep_records = True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ServingCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Tear the worker pool down (signal-all, shared join deadline)."""
        self.pool.stop()
        self._live_workers.clear()
        for group in self._groups.values():
            group.clear()

    def _spawn_worker(self, shard: int) -> int:
        worker = self.pool.spawn(
            _shard_loop,
            self._factory,
            self._registry,
            self.engine_overrides.get(shard),
        )
        self._worker_shard[worker] = shard
        self._groups[shard].append(worker)
        self._inflight[worker] = {}
        self._dispatches[worker] = deque()
        self._last_contact[worker] = self._clock()
        self._ping_at[worker] = None
        self._live_workers.add(worker)
        return worker

    @property
    def live_shards(self) -> list[int]:
        """Shards with at least one live replica."""
        return sorted(s for s, group in self._groups.items() if group)

    @property
    def live_workers(self) -> list[int]:
        return sorted(self._live_workers)

    def replica_count(self, shard: int) -> int:
        return len(self._groups[shard])

    def full_capacity(self) -> bool:
        """Every shard has a full replica group and owns ring arcs —
        the recovery target the chaos harness waits for."""
        return all(
            len(self._groups[shard]) >= self.config.replicas_per_shard
            and shard in self.ring.nodes
            for shard in range(self.config.num_shards)
        )

    @property
    def inflight(self) -> int:
        return sum(
            len(entries) for entries in self._inflight.values()
        ) + sum(len(entries) for entries in self._pending.values())

    def accounted(self) -> bool:
        """The cluster-level invariant: every submission is completed,
        shed, failed, or still in flight."""
        return self.submitted == (
            self.completed + self.shed + self.failed + self.inflight
        )

    def slo_attainment(self) -> float | None:
        """Fraction of terminal requests that completed inside the
        router deadline (``None`` without a deadline or traffic)."""
        if self.config.deadline is None:
            return None
        terminal = self.completed + self.shed + self.failed
        if terminal == 0:
            return None
        return self.slo_met / terminal

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def submit(self, user, history) -> str:
        """Route one request; returns ``"queued"`` or ``"shed"``
        (``"failed"`` when no shard is live).

        Shedding happens *here*, at admission: a request that would
        overflow the shard's queue, or whose predicted wait
        (queue depth × EWMA service time, spread over the replica
        group) already exceeds the deadline budget, is refused
        immediately instead of queued to die.  A flapped (crash-loop)
        shard has left the ring, so its keyspace degrades to the
        survivors — or to fast admission failures once no shard is
        left — rather than hanging.
        """
        self.submitted += 1
        shard = self.ring.lookup(user)
        if shard is None:
            self.failed += 1
            self._record(None, user, "failed", None, None)
            return "failed"
        group = self._groups[shard]
        depth = len(self._pending[shard]) + sum(
            len(self._inflight[worker]) for worker in group
        )
        config = self.config
        if depth >= config.max_queue:
            self.shed += 1
            self._record(shard, user, "shed", None, None)
            return "shed"
        ewma = self._ewma[shard]
        if (
            config.deadline is not None
            and ewma is not None
            and (depth + 1) * ewma / max(len(group), 1)
            > config.shed_margin * config.deadline
        ):
            self.shed += 1
            self._record(shard, user, "shed", None, None)
            return "shed"
        request_id = self._next_id
        self._next_id += 1
        # ``None`` start time = not yet dispatched; failover replays
        # keep the original dispatch time so latency stays honest.
        self._pending[shard].append((request_id, user, history, None))
        if len(self._pending[shard]) >= config.batch_size:
            self._flush_shard(shard)
        return "queued"

    def flush(self) -> None:
        """Send every queued request to its shard's replica group."""
        for shard, pending in self._pending.items():
            if pending and self._groups[shard]:
                self._flush_shard(shard)

    def pump(self, timeout: float = 0.0) -> int:
        """Run one supervisor tick, then drain ready worker replies;
        returns completions processed."""
        before = self.completed + self.failed
        self.maintain()
        for worker in self._wait_ready(timeout):
            self._read_worker(worker)
        return (self.completed + self.failed) - before

    def drain(self, timeout: float = 30.0) -> None:
        """Flush and settle every outstanding request.

        A worker that stops answering within ``timeout`` is killed and
        declared dead; whatever still isn't terminal after that
        escalation is force-failed — ``drain`` returns with **every**
        submitted request terminal, even after a total cluster death.
        """
        self.flush()
        deadline = self._clock() + timeout
        while self.inflight and self._clock() < deadline:
            self.flush()
            self.pump(timeout=0.05)
        if self.inflight:
            # Escalation: kill whatever still holds in-flight work.
            for worker in sorted(self._live_workers):
                if self._inflight.get(worker):
                    self.pool.kill(worker)
                    self._reap(worker, cause="drain timeout")
            self.flush()
            self.pump(timeout=0.1)
        if self.inflight:
            # Belt-and-braces: force-fail anything left (e.g. queued
            # work on a shard whose whole group died with respawn off).
            for shard, pending in self._pending.items():
                if not pending:
                    continue
                self._pending[shard] = []
                for _, user, _, _ in pending:
                    self.failed += 1
                    self._record(shard, user, "failed", None, None)
            for worker in sorted(self._live_workers):
                entries = self._inflight.get(worker)
                if not entries:
                    continue
                self._inflight[worker] = {}
                self._dispatches[worker].clear()
                shard = self._worker_shard[worker]
                for entry in entries.values():
                    self.failed += 1
                    self._record(shard, entry.user, "failed", None, None)

    def _flush_shard(self, shard: int) -> None:
        batch = self._pending[shard]
        group = self._groups[shard]
        if not batch or not group:
            return
        self._pending[shard] = []
        hot = self._hot_batches[shard]
        hot[len(batch)] = hot.get(len(batch), 0) + 1
        if len(hot) > 8:
            # Keep the histogram tiny: drop the coldest size.
            del hot[min(hot, key=hot.get)]
        worker = group[self._rr[shard] % len(group)]
        self._rr[shard] += 1
        now = self._clock()
        entries = [(rid, history) for rid, _, history, _ in batch]
        for rid, user, history, started in batch:
            self._inflight[worker][rid] = _Inflight(
                user, history, now if started is None else started
            )
        try:
            self.pool.send(worker, ("batch", entries, self.config.top_n))
            self._dispatches[worker].append(now)
        except WorkerError:
            self._worker_died(worker, cause="send failed")

    def _wait_ready(self, timeout: float) -> list[int]:
        by_conn = {
            self.pool.connections[worker]: worker
            for worker in sorted(self._live_workers)
        }
        if not by_conn:
            return []
        ready = _mpc.wait(list(by_conn), timeout=timeout)
        return [by_conn[conn] for conn in ready]

    def _read_worker(self, worker: int) -> None:
        try:
            message = self.pool.connections[worker].recv()
        except (EOFError, OSError):
            # recv hit EOF, so the pipe buffer is already empty: no
            # buffered results to salvage before declaring death.
            self._worker_died(worker, cause="pipe EOF")
            return
        self._on_message(worker, message)

    def _on_message(self, worker: int, message) -> None:
        kind = message[0]
        self._last_contact[worker] = self._clock()
        if kind == "results":
            dispatches = self._dispatches.get(worker)
            if dispatches:
                dispatches.popleft()
            self._absorb_results(worker, message[1])
        elif kind == "pong":
            self._ping_at[worker] = None
        elif kind == "error":
            # The worker's loop itself broke: nothing more will come.
            self.pool.kill(worker)
            self._worker_died(worker, cause="raised")
            raise WorkerError(
                f"shard worker {worker} raised:\n{message[1]}"
            )
        elif kind in (
            "swapped", "swap_failed", "rolled_back", "committed",
            "probed", "stats", "described", "warmed",
        ):
            # A control reply outliving its timed-out control call —
            # drop it rather than wedge the data plane.
            pass
        else:  # pragma: no cover - protocol guard
            raise WorkerError(
                f"shard worker {worker} sent unexpected {kind!r}"
            )

    def _absorb_results(self, worker: int, replies) -> None:
        now = self._clock()
        config = self.config
        shard = self._worker_shard[worker]
        for request_id, ok, payload in replies:
            entry = self._inflight[worker].pop(request_id, None)
            if entry is None:
                # Late reply for a request already failed over or
                # force-failed — the replay owns its accounting now.
                continue
            self.completed += 1
            round_trip = now - entry.submitted
            self.latency.add(round_trip)
            if ok:
                if (
                    config.deadline is not None
                    and round_trip <= config.deadline
                ):
                    self.slo_met += 1
                # EWMA on the *service-side* latency (payload[2]):
                # round-trip includes queueing, which would feed back
                # into the shed predictor and over-shed.
                service_time = payload[2]
                previous = self._ewma[shard]
                self._ewma[shard] = service_time if previous is None else (
                    (1.0 - config.ewma_alpha) * previous
                    + config.ewma_alpha * service_time
                )
                self._record(
                    shard, entry.user, "ok", payload[1], round_trip
                )
            else:
                self._record(
                    shard, entry.user, f"error:{payload[0]}", None,
                    round_trip,
                )

    def _record(self, shard, user, status, rung, latency) -> None:
        if self.keep_records:
            self.records.append((shard, user, status, rung, latency))

    # ------------------------------------------------------------------
    # Supervisor: death, failover, respawn, health probing
    # ------------------------------------------------------------------
    def _worker_died(self, worker: int, cause: str) -> None:
        """Bookkeep one worker death.

        With surviving replicas, the dead worker's in-flight requests
        are **failed over**: re-queued at the front of the shard's
        pending list (original dispatch times preserved) and
        immediately re-dispatched — serving is stateless, so the replay
        is safe and the requests are never counted failed.  When the
        death empties the replica group, in-flight work is failed, the
        shard leaves the ring, queued work reroutes, and — respawn
        permitting — a replacement fork is scheduled with backoff.
        """
        if worker not in self._live_workers:
            return
        self._live_workers.discard(worker)
        shard = self._worker_shard[worker]
        group = self._groups[shard]
        if worker in group:
            group.remove(worker)
        self.pool.retire(worker)
        now = self._clock()
        self._event("worker_died", shard, worker=worker, cause=cause)
        entries = self._inflight[worker]
        self._inflight[worker] = {}
        self._dispatches[worker].clear()
        self._ping_at[worker] = None
        if group:
            replay = [
                (rid, entry.user, entry.history, entry.submitted)
                for rid, entry in sorted(entries.items())
            ]
            if replay:
                self._pending[shard][:0] = replay
                self._event(
                    "failover", shard, worker=worker,
                    requests=len(replay),
                )
            self._flush_shard(shard)
        else:
            for entry in entries.values():
                self.failed += 1
                self._record(shard, entry.user, "failed", None, None)
            self.ring.remove(shard)
            self._event("blackout", shard, failed=len(entries))
            # Unsent work never left the router: reroute via the new
            # ring (the dead shard's list is detached first, so a
            # cascade of further deaths during rerouting still
            # terminates with every request terminal).
            orphans = self._pending[shard]
            self._pending[shard] = []
            for _, user, history, _ in orphans:
                self.submitted -= 1  # re-submission recounts it
                self.submit(user, history)
        deaths = self._deaths[shard]
        deaths.append(now)
        cutoff = now - self.config.flap_window
        while deaths and deaths[0] < cutoff:
            deaths.pop(0)
        if not self.config.respawn or shard in self._flapped:
            return
        if len(deaths) >= self.config.flap_threshold:
            self._flapped.add(shard)
            self._respawn_at[shard] = None
            self._event("flap_tripped", shard, deaths=len(deaths))
            return
        backoff = min(
            self.config.respawn_backoff * (2 ** (len(deaths) - 1)),
            self.config.respawn_backoff_max,
        )
        self._respawn_at[shard] = now + backoff

    def _reap(self, worker: int, cause: str) -> None:
        """Declare one worker dead, first draining any replies it
        managed to write before dying (SIGKILL leaves written pipe data
        readable), so completed work is not miscounted as failed."""
        connection = self.pool.connections[worker]
        try:
            while connection.poll(0):
                self._on_message(worker, connection.recv())
        except (EOFError, OSError):
            pass
        self._worker_died(worker, cause)

    def maintain(self) -> None:
        """One supervisor tick: reap exited workers, probe for stalls,
        fork due respawns.  Runs inside every :meth:`pump`; loops that
        wait out of band (pacing, chaos recovery) call it directly."""
        now = self._clock()
        config = self.config
        for worker in sorted(self._live_workers):
            if worker not in self._live_workers:
                continue  # died during this very tick
            if not self.pool.alive(worker):
                self._reap(worker, cause="exit")
                continue
            if config.stall_timeout is None:
                continue
            dispatches = self._dispatches[worker]
            if dispatches and now - dispatches[0] > config.stall_timeout:
                # Wedged mid-batch: without this probe the batch would
                # hang until its caller's timeout.  Kill → failover.
                self.pool.kill(worker)
                self._reap(worker, cause="stalled batch")
                continue
            ping_sent = self._ping_at[worker]
            if ping_sent is not None:
                if now - ping_sent > config.stall_timeout:
                    self.pool.kill(worker)
                    self._reap(worker, cause="unanswered ping")
                continue
            if (
                not dispatches
                and now - self._last_contact[worker]
                > config.heartbeat_interval
            ):
                try:
                    self.pool.send(worker, ("ping", now))
                    self._ping_at[worker] = now
                except WorkerError:
                    self._worker_died(worker, cause="send failed")
        for shard, due in list(self._respawn_at.items()):
            if due is not None and now >= due:
                self._respawn_replica(shard)

    def _respawn_replica(self, shard: int) -> None:
        """Fork one replacement worker for ``shard``, warm-load the
        committed rollout state, and rejoin the ring."""
        self._respawn_at[shard] = None
        if not self.config.respawn or shard in self._flapped:
            return
        if len(self._groups[shard]) >= self.config.replicas_per_shard:
            return
        worker = self._spawn_worker(shard)
        rejoining = shard not in self.ring.nodes
        try:
            for rung, payload in self._swaps[shard].items():
                reply = self._control_worker(
                    worker, ("swap", rung, payload),
                    ("swapped", "swap_failed"),
                )
                if reply[0] == "swap_failed":
                    self.pool.kill(worker)
                    self._worker_died(worker, cause="warm-load failed")
                    return
            if self._swaps[shard]:
                # A fresh worker's stash holds its factory models;
                # commit so a future rollback stops at the warm-loaded
                # state, exactly like its peers.
                self._control_worker(worker, ("commit",), ("committed",))
            # Replica-aware cache warming: replay the shard's hot flush
            # sizes so the replacement pre-traces its compiled scoring
            # programs now, not on its first live batches.
            hot = sorted(self._hot_batches[shard])
            warmed = 0
            if hot:
                warmed = self._control_worker(
                    worker, ("warm", hot), ("warmed",)
                )[1]
        except ClusterError:
            return  # died during warm-load; books already settled
        self.respawns += 1
        self._event(
            "respawned", shard, worker=worker, warmed_programs=warmed
        )
        if rejoining:
            self.ring.add(shard)
            self._event("rejoined", shard)
        if len(self._groups[shard]) < self.config.replicas_per_shard:
            self._respawn_at[shard] = (
                self._clock() + self.config.respawn_backoff
            )

    def _event(self, kind: str, shard: int | None, **details) -> None:
        event = {"t": self._clock(), "kind": kind, "shard": shard}
        event.update(details)
        self.events.append(event)

    def recovery_spans(self) -> list[dict]:
        """Death → replacement-serving spans, from the event log:
        one entry per completed respawn, oldest unmatched death first."""
        spans = []
        open_deaths: dict[int, list[float]] = {}
        for event in self.events:
            if event["kind"] == "worker_died":
                open_deaths.setdefault(event["shard"], []).append(
                    event["t"]
                )
            elif event["kind"] == "respawned":
                queue = open_deaths.get(event["shard"])
                if queue:
                    died = queue.pop(0)
                    spans.append({
                        "shard": event["shard"],
                        "seconds": event["t"] - died,
                    })
        return spans

    # ------------------------------------------------------------------
    # Fault drills
    # ------------------------------------------------------------------
    def kill_shard(self, shard: int) -> None:
        """SIGKILL every replica of one shard mid-run (blackout drill).
        Discovery is left to the supervisor/data path: the next pump
        sees the deaths, fails in-flight work, reroutes the queue,
        shrinks the ring — and, respawn permitting, refills the group."""
        for worker in list(self._groups[shard]):
            self.pool.kill(worker)

    def kill_replica(self, shard: int, which: int = 0) -> int:
        """SIGKILL one replica of ``shard`` (failover drill); returns
        the killed worker's pool index."""
        group = self._groups[shard]
        if not group:
            raise ClusterError(f"shard {shard} has no live replica")
        worker = group[which % len(group)]
        self.pool.kill(worker)
        return worker

    def stall_replica(
        self, shard: int, seconds: float, which: int = 0
    ) -> int:
        """Wedge one replica of ``shard`` for ``seconds`` without
        killing it (stall-probe drill); returns the worker index."""
        group = self._groups[shard]
        if not group:
            raise ClusterError(f"shard {shard} has no live replica")
        worker = group[which % len(group)]
        self.pool.send(worker, ("stall", seconds))
        return worker

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _control_worker(self, worker: int, message, expected: tuple):
        """Send a control message and wait for its reply, absorbing any
        interleaved data-plane traffic (pipes are FIFO)."""
        try:
            self.pool.send(worker, message)
        except WorkerError:
            self._worker_died(worker, cause="send failed")
            raise ClusterError(
                f"shard worker {worker} died before {message[0]!r}"
            ) from None
        deadline = self._clock() + self.config.worker_timeout
        connection = self.pool.connections[worker]
        while self._clock() < deadline:
            if not connection.poll(0.05):
                if not self.pool.alive(worker):
                    self._reap(worker, cause="died during control")
                    raise ClusterError(
                        f"shard worker {worker} died during "
                        f"{message[0]!r}"
                    )
                continue
            try:
                reply = connection.recv()
            except (EOFError, OSError):
                self._worker_died(worker, cause="pipe EOF")
                raise ClusterError(
                    f"shard worker {worker} died during {message[0]!r}"
                ) from None
            if reply[0] in expected:
                self._last_contact[worker] = self._clock()
                return reply
            self._on_message(worker, reply)
        raise ClusterError(
            f"shard worker {worker} sent no {expected} reply within "
            f"{self.config.worker_timeout:.0f}s"
        )

    def _control_shard(self, shard: int, message, expected: tuple):
        """Control round-trip against the shard's first live replica,
        failing over to the next group member when the leader turns out
        to be dead (a SIGKILL the router has not observed yet)."""
        while True:
            group = self._groups[shard]
            if not group:
                raise ClusterError(f"shard {shard} has no live replica")
            leader = group[0]
            try:
                return self._control_worker(leader, message, expected)
            except ClusterError:
                # _control_worker already ran the death bookkeeping; if
                # the group lost its leader but survives, retry on the
                # next replica — otherwise the shard really is down.
                if leader in self._groups[shard] or not self._groups[shard]:
                    raise

    def describe(self) -> dict[int, dict]:
        """Per-shard, per-rung model identity (class name + version +
        engine summary), read from the group's first replica —
        replicas are kept in lockstep by rollout/commit/warm-load."""
        return {
            shard: self._control_shard(shard, ("describe",), ("described",))[1]
            for shard in self.live_shards
        }

    def stats(self) -> dict:
        """Cluster-wide snapshot: router accounting plus the merged
        worker ``ServiceStats`` (which must satisfy the same
        ``accounted()`` invariant as a single process would)."""
        merged = ServiceStats([])
        per_shard = {}
        for shard in self.live_shards:
            shard_merged = ServiceStats([])
            for worker in list(self._groups[shard]):
                try:
                    reply = self._control_worker(
                        worker, ("stats",), ("stats",)
                    )
                except ClusterError:
                    continue  # its books died with it
                merged.merge(reply[1])
                shard_merged.merge(reply[1])
            per_shard[shard] = shard_merged.snapshot()
        return {
            "cluster": {
                "submitted": self.submitted,
                "completed": self.completed,
                "shed": self.shed,
                "failed": self.failed,
                "inflight": self.inflight,
                "accounted": self.accounted(),
                "slo_attainment": self.slo_attainment(),
                "live_shards": self.live_shards,
                "replicas": {
                    shard: len(self._groups[shard])
                    for shard in range(self.config.num_shards)
                },
                "respawns": self.respawns,
                "flapped_shards": sorted(self._flapped),
                "full_capacity": self.full_capacity(),
                "latency": self.latency.summary(),
                # Fleet-wide health of the candidate-native path: how
                # much served traffic ranked straight from narrow
                # candidate lists vs. paid a dense full-width fallback.
                # A sinking ratio means exclusion lists are outgrowing
                # the candidate budget somewhere in the fleet.
                "narrow_ranked": merged.narrow_ranked,
                "dense_fallbacks": merged.dense_fallbacks,
                "narrow_ratio": (
                    round(merged.narrow_ranked / merged.total_served, 4)
                    if merged.total_served else None
                ),
            },
            "service": merged.snapshot(),
            "per_shard": per_shard,
        }

    def merged_service_stats(self) -> ServiceStats:
        """The raw merged :class:`ServiceStats` across live workers."""
        merged = ServiceStats([])
        for shard in self.live_shards:
            for worker in list(self._groups[shard]):
                try:
                    reply = self._control_worker(
                        worker, ("stats",), ("stats",)
                    )
                except ClusterError:
                    continue
                merged.merge(reply[1])
        return merged

    # ------------------------------------------------------------------
    # Canary rollout
    # ------------------------------------------------------------------
    def rollout(
        self,
        rung: str,
        model_or_path,
        probe_histories,
        probes_per_shard: int = 8,
    ) -> RolloutReport:
        """Rolling canary hot-swap of ``rung`` across all live shards.

        One shard at a time: swap every replica in the group (object or
        checkpoint path — the engine's ``set_model`` version bump
        invalidates that worker's score cache), then replay
        ``probes_per_shard`` probe requests at each replica.  The shard
        is healthy only if **every** probe is served *by the swapped
        rung* (no degraded fallbacks) and no replica's breaker records
        new trips.  Any unhealthy shard aborts the rollout and rolls
        every already-swapped shard back to its pre-canary model, in
        reverse order.  A fully-successful rollout is **committed**:
        replicas drop their rollback stash, and the payload is recorded
        so respawned workers warm-load it — a replica that dies and
        respawns mid-canary-lifetime serves the same model as its
        peers.  Probe traffic is accounted worker-side like any other
        traffic but does not touch the router's counters.
        """
        probe_histories = list(probe_histories)
        if not probe_histories:
            raise ValueError("rollout needs at least one probe history")
        report = RolloutReport(ok=True, rung=rung)
        for shard in self.live_shards:
            for worker in list(self._groups[shard]):
                reply = self._control_worker(
                    worker, ("swap", rung, model_or_path),
                    ("swapped", "swap_failed"),
                )
                if shard not in report.swapped:
                    report.swapped.append(shard)
                if reply[0] == "swap_failed":
                    report.ok = False
                    report.failed_shard = shard
                    report.reason = f"swap failed: {reply[1]}"
                    break
            if not report.ok:
                break
            healthy, reason = self._probe_shard(
                shard, rung, probe_histories, probes_per_shard
            )
            if not healthy:
                report.ok = False
                report.failed_shard = shard
                report.reason = reason
                break
        if not report.ok and report.swapped:
            for shard in reversed(report.swapped):
                for worker in list(self._groups[shard]):
                    try:
                        self._control_worker(
                            worker, ("rollback",), ("rolled_back",)
                        )
                    except ClusterError:
                        continue
            report.rolled_back = True
        if report.ok:
            for shard in self.live_shards:
                for worker in list(self._groups[shard]):
                    try:
                        self._control_worker(
                            worker, ("commit",), ("committed",)
                        )
                    except ClusterError:
                        continue
            # Recorded for *every* shard — a shard that is down right
            # now warm-loads the committed model when it respawns.
            for shard in range(self.config.num_shards):
                self._swaps[shard][rung] = model_or_path
        return report

    def _probe_shard(
        self, shard: int, rung: str, probe_histories, probes: int
    ) -> tuple[bool, str | None]:
        for worker in list(self._groups[shard]):
            healthy, reason = self._probe_worker(
                worker, shard, rung, probe_histories, probes
            )
            if not healthy:
                return healthy, reason
        return True, None

    def _probe_worker(
        self, worker: int, shard: int, rung: str, probe_histories,
        probes: int,
    ) -> tuple[bool, str | None]:
        before = self._control_worker(worker, ("stats",), ("stats",))[2]
        trips_before = self._breaker_trips(before, rung)
        entries = [
            (index, probe_histories[index % len(probe_histories)])
            for index in range(probes)
        ]
        reply = self._control_worker(
            worker, ("probe", entries, self.config.top_n), ("probed",)
        )
        for _, ok, payload in reply[1]:
            if not ok:
                return False, (
                    f"probe failed on shard {shard}: "
                    f"{payload[0]}: {payload[1]}"
                )
            if payload[1] != rung:
                return False, (
                    f"probe degraded past the canary on shard {shard}: "
                    f"served by {payload[1]!r}, expected {rung!r}"
                )
        after = self._control_worker(worker, ("stats",), ("stats",))[2]
        trips_after = self._breaker_trips(after, rung)
        if trips_after > trips_before:
            return False, (
                f"breaker tripped on shard {shard} during probes "
                f"({trips_after - trips_before} new trips)"
            )
        return True, None

    @staticmethod
    def _breaker_trips(snapshot: dict, rung: str) -> int:
        breaker = snapshot.get("rungs", {}).get(rung, {}).get("breaker")
        return int(breaker.get("times_opened", 0)) if breaker else 0

    # ------------------------------------------------------------------
    # Open-loop load harness
    # ------------------------------------------------------------------
    def run_load(
        self,
        traffic,
        pace: bool = False,
        sleep=time.sleep,
        drain_timeout: float = 30.0,
    ) -> dict:
        """Replay an arrival schedule open-loop and report the run.

        ``traffic`` yields ``(user_id, history, arrival_time)`` with
        arrival times in seconds from the start of the run (e.g.
        :func:`repro.data.synthetic.zipf_traffic`).  Open loop means
        arrivals are *not* gated on completions: each is submitted at
        its scheduled time (when ``pace`` is true; as fast as possible
        otherwise), the router sheds what the fleet cannot absorb, and
        replies are drained opportunistically between submissions.
        Pacing sleeps in short slices with the pump in between, so the
        supervisor keeps reaping/respawning while the line is idle.

        Returns a report with sustained throughput (completions /
        wall-clock), the round-trip latency summary (p50/p95/p99), shed
        and failure counts, both accounting invariants, and — with a
        router deadline configured — this run's SLO attainment (the
        fraction of this run's terminal requests completed inside the
        deadline at the offered rate).
        """
        started = self._clock()
        offered = 0
        terminal_before = self.completed + self.shed + self.failed
        slo_before = self.slo_met
        for user, history, arrival in traffic:
            if pace:
                while True:
                    lag = arrival - (self._clock() - started)
                    if lag <= 0:
                        break
                    sleep(min(lag, 0.02))
                    self.pump(timeout=0.0)
            self.submit(user, history)
            offered += 1
            self.pump(timeout=0.0)
        self.drain(timeout=drain_timeout)
        wall = max(self._clock() - started, 1e-9)
        terminal = (
            self.completed + self.shed + self.failed - terminal_before
        )
        if self.config.deadline is None or terminal == 0:
            slo = None
        else:
            slo = round((self.slo_met - slo_before) / terminal, 4)
        merged = self.merged_service_stats()
        return {
            "offered": offered,
            "wall_seconds": round(wall, 4),
            "sustained_rps": round(self.completed / wall, 2),
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "slo_attainment": slo,
            "respawns": self.respawns,
            "latency": self.latency.summary(),
            "cluster_accounted": self.accounted(),
            "service_accounted": merged.accounted(),
            "live_shards": self.live_shards,
        }
