"""Fault-tolerant inference: the serving layer of the reproduction.

Training (``repro.train``) is crash-safe; this package makes *inference*
degrade gracefully instead of falling over.  The pieces:

- :class:`RecommendService` — request validation, per-request deadlines,
  a circuit-breaker-guarded fallback chain (e.g. ``VSAN → SASRec →
  POP``), retry-with-backoff for transient failures, and full request
  accounting via :meth:`RecommendService.stats`.
- :class:`InferenceEngine` — the high-throughput serving front-end:
  guaranteed no-tape forwards, request micro-batching
  (:class:`MicroBatcher`), and an LRU :class:`ScoreCache` keyed on
  (model version, history suffix) with invalidation on hot-swap.
- :class:`ServingCluster` — self-healing shard replica groups (full
  services forked via :class:`repro.pool.ForkedWorkerPool`) behind a
  :class:`ConsistentHashRing` user router, with admission control /
  load shedding, replica failover, supervised respawn with flap
  breaking, heartbeat/stall probing, canary rollout with automatic
  rollback, and merged cross-shard accounting.
- :mod:`repro.serve.chaos` — the seeded fault-schedule harness
  (:func:`run_chaos`) that SIGKILLs, blacks out, and stalls workers
  under paced load while asserting the accounting invariants and
  recovery to full capacity.
- :class:`CircuitBreaker` — closed/open/half-open rung guard.
- :class:`RetryPolicy` — exponential backoff with seeded jitter.
- :mod:`repro.serve.faults` — a seeded fault injector (latency spikes,
  raised exceptions, NaN-poisoned scores, file corruption helpers) so
  every failure path is exercised deterministically in tests and by the
  ``repro serve-smoke`` CLI.
- :func:`safe_load_model` — checkpoint loading that rejects corrupt,
  truncated, or NaN-weight files with
  :class:`repro.nn.CheckpointError`.

See ``docs/SERVING.md`` for the fault model and ladder semantics.
"""

from ..retrieval import IndexConfig, TopScores
from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .chaos import ChaosConfig, run_chaos
from .cluster import (
    ClusterConfig,
    ConsistentHashRing,
    RolloutReport,
    ServingCluster,
)
from .engine import EngineConfig, InferenceEngine, MicroBatcher, ScoreCache
from .errors import (
    AllRungsFailed,
    CheckpointError,
    ClusterError,
    DeadlineExceeded,
    InvalidRequest,
    ServeError,
    TransientError,
)
from .faults import (
    FaultInjector,
    FaultyRecommender,
    InjectedFault,
    flip_byte,
    truncate_file,
)
from .loading import safe_load_model, validate_finite_state
from .retry import RetryPolicy
from .service import Recommendation, RecommendService, ServiceConfig
from .stats import LatencyTracker, RungStats, ServiceStats

__all__ = [
    "AllRungsFailed",
    "CLOSED",
    "ChaosConfig",
    "CheckpointError",
    "CircuitBreaker",
    "ClusterConfig",
    "ClusterError",
    "ConsistentHashRing",
    "DeadlineExceeded",
    "EngineConfig",
    "FaultInjector",
    "FaultyRecommender",
    "HALF_OPEN",
    "IndexConfig",
    "InferenceEngine",
    "InjectedFault",
    "InvalidRequest",
    "LatencyTracker",
    "MicroBatcher",
    "OPEN",
    "Recommendation",
    "RecommendService",
    "RetryPolicy",
    "RolloutReport",
    "ScoreCache",
    "RungStats",
    "ServingCluster",
    "ServeError",
    "ServiceConfig",
    "ServiceStats",
    "TopScores",
    "TransientError",
    "flip_byte",
    "run_chaos",
    "safe_load_model",
    "truncate_file",
    "validate_finite_state",
]
