"""Importance-weighted log-likelihood estimation for VSAN.

The ELBO of Eq. 20 lower-bounds the sequence log-likelihood
``log p(S)``; the importance-weighted bound of Burda et al. (IWAE)
tightens it by averaging ``L`` posterior samples inside the log:

    log p(S) >= E[ log (1/L) sum_l  p(S|z_l) p(z_l) / q(z_l|S) ]

and becomes exact as L -> inf.  This is the standard way to *compare
VAE models by likelihood* rather than by ranking metrics — an evaluation
the paper does not run but that a VAE repository should support.

Everything here is evaluation-only (no gradients), computed in plain
numpy under ``no_grad`` for clarity and speed.
"""

from __future__ import annotations

import numpy as np

from ..data.batching import shift_targets
from ..tensor import no_grad

__all__ = ["importance_weighted_log_likelihood"]

_LOG_2PI = float(np.log(2.0 * np.pi))


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def _gaussian_log_pdf(x, mean, scale) -> np.ndarray:
    """Elementwise log N(x; mean, scale^2), summed over the last axis."""
    z = (x - mean) / scale
    return (-0.5 * (z**2 + _LOG_2PI) - np.log(scale)).sum(axis=-1)


def importance_weighted_log_likelihood(
    model,
    padded: np.ndarray,
    num_samples: int = 16,
    rng: np.random.Generator | None = None,
) -> float:
    """IWAE estimate of the mean per-position next-item log-likelihood.

    Args:
        model: a trained :class:`repro.core.VSAN` with ``use_latent``.
        padded: ``(batch, max_length + 1)`` padded sequences (as produced
            by ``model.padded_training_rows``).
        num_samples: importance samples ``L`` (1 recovers a single-sample
            ELBO estimate; larger is tighter).
        rng: sampling generator (defaults to a fresh seeded one).

    Returns:
        Mean log-likelihood per supervised position (nats; higher is
        better).  Suitable for comparing VSAN variants on equal data.
    """
    if not getattr(model, "use_latent", False):
        raise ValueError("IWAE bound needs a latent-variable model")
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    rng = rng if rng is not None else np.random.default_rng(0)
    model.eval()
    inputs, targets, weights = shift_targets(
        np.asarray(padded, dtype=np.int64)
    )
    batch, length = inputs.shape

    with no_grad():
        encoded, timeline_mask, key_padding_mask = model.inference_layer(
            inputs
        )
        mu_t, sigma_t = model.posterior(encoded)
        mu = mu_t.numpy()
        sigma = sigma_t.numpy()

        log_weights = np.empty((num_samples, batch))
        for sample_index in range(num_samples):
            noise = rng.standard_normal(mu.shape)
            z = mu + sigma * noise
            from ..tensor import Tensor

            hidden = model.generative_layer(
                Tensor(z), timeline_mask, key_padding_mask
            )
            logits = model.prediction_layer(hidden).numpy()
            log_probs = _log_softmax(logits)
            rows = np.arange(batch)[:, None]
            cols = np.arange(length)[None, :]
            reconstruction = (
                log_probs[rows, cols, targets] * weights
            ).sum(axis=1)
            # Only supervised positions contribute latent terms, matching
            # the weighting of the training ELBO.
            prior = _gaussian_log_pdf(z, 0.0, np.ones_like(sigma))
            posterior = _gaussian_log_pdf(z, mu, sigma)
            latent_term = ((prior - posterior) * weights).sum(axis=1)
            log_weights[sample_index] = reconstruction + latent_term

        # logsumexp over samples, stable.
        peak = log_weights.max(axis=0)
        bound = peak + np.log(
            np.exp(log_weights - peak).mean(axis=0)
        )
    total_positions = weights.sum()
    if total_positions == 0:
        raise ValueError("batch has no supervised positions")
    return float(bound.sum() / total_positions)
