"""The β-ELBO of Eq. 20, factored out of the models.

Both VAEs in this repository (VSAN and the SVAE baseline) minimize

    L_β = β · KL(q_λ(z|S) || N(0, I)) − E_q[log p_θ(S|z)]

where the reconstruction term is a softmax cross-entropy against the
next item (one-hot) or the next ``k`` items (multi-hot, Eq. 18), averaged
over the non-padded sequence positions; the KL term is the closed-form
Gaussian divergence summed over latent dimensions and averaged over the
same positions.

:func:`elbo_terms` returns the pieces separately so callers can log the
reconstruction/KL trade-off (and so tests can check each in isolation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.batching import next_k_multi_hot, shift_targets
from ..tensor import (
    Tensor,
    cross_entropy,
    cross_entropy_reference,
    gaussian_kl_standard_normal,
    get_default_dtype,
    multi_hot_cross_entropy,
    multi_hot_cross_entropy_reference,
)
from ..tensor.compile import record_feed, tracing

__all__ = ["ELBOTerms", "elbo_terms", "reconstruction_targets"]


@dataclass
class ELBOTerms:
    """The two terms of Eq. 20 plus the β in force at this step."""

    reconstruction: Tensor
    kl: Tensor | None
    beta: float

    @property
    def loss(self) -> Tensor:
        """``reconstruction + beta * kl`` (just reconstruction when the
        model has no latent variable)."""
        if self.kl is None or self.beta == 0.0:
            return self.reconstruction
        if tracing():
            # β changes every step under annealing, so a compiled program
            # takes it as a named feed instead of freezing it into the
            # graph.  (The β == 0 branch above is structural: the trainer
            # keys programs on it and retraces when a schedule crosses
            # zero.)
            beta_arr = np.asarray(self.beta, dtype=get_default_dtype())
            record_feed("beta", beta_arr)
            return self.reconstruction + Tensor(beta_arr) * self.kl
        return self.reconstruction + self.beta * self.kl

    @property
    def reconstruction_value(self) -> float:
        return self.reconstruction.item()

    @property
    def kl_value(self) -> float:
        return 0.0 if self.kl is None else self.kl.item()


def reconstruction_targets(
    padded: np.ndarray,
    k: int,
    num_items: int,
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, bool]:
    """Derive training targets from a padded batch.

    Returns ``(inputs, targets, weights, multi_hot)``: one-hot integer
    targets for ``k == 1`` (the paper's Eq. 14 mode) or a {0,1} multi-hot
    tensor over the catalogue for ``k > 1`` (Eq. 18).  ``out`` recycles a
    caller-owned dense buffer for the ``k > 1`` target (see
    :func:`repro.data.batching.next_k_multi_hot`); ``k == 1`` ignores it.
    """
    if k == 1:
        inputs, targets, weights = shift_targets(padded)
        return inputs, targets, weights, False
    inputs, targets, weights = next_k_multi_hot(
        padded, k, num_items, out=out
    )
    return inputs, targets, weights, True


def elbo_terms(
    logits: Tensor,
    targets: np.ndarray,
    weights: np.ndarray,
    mu: Tensor | None,
    sigma: Tensor | None,
    beta: float,
    multi_hot: bool,
    fused: bool = True,
) -> ELBOTerms:
    """Assemble Eq. 20 from model outputs.

    Args:
        logits: ``(batch, length, num_items + 1)`` prediction scores.
        targets: integer next-item ids, or a multi-hot array when
            ``multi_hot`` is True.
        weights: per-position supervision weights (0 at padding).
        mu, sigma: posterior parameters (both None for latent-free
            ablations such as VSAN-z — the KL term is then omitted).
        beta: the KL weight in force (from a
            :class:`repro.train.annealing.BetaSchedule`).
        multi_hot: selects the reconstruction form.
        fused: compute the reconstruction term with the fused
            log-sum-exp kernel (default) or the composed reference.
    """
    if multi_hot:
        reconstruct = (
            multi_hot_cross_entropy
            if fused
            else multi_hot_cross_entropy_reference
        )
    else:
        reconstruct = cross_entropy if fused else cross_entropy_reference
    reconstruction = reconstruct(logits, targets, weights=weights)
    if (mu is None) != (sigma is None):
        raise ValueError("mu and sigma must both be given or both None")
    kl = (
        gaussian_kl_standard_normal(mu, sigma, weights=weights)
        if mu is not None
        else None
    )
    return ELBOTerms(reconstruction=reconstruction, kl=kl, beta=beta)
