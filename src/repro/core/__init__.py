"""The paper's primary contribution: the VSAN model and its ELBO pieces."""

from ..train.annealing import BetaSchedule, ConstantBeta, KLAnnealing
from .bounds import importance_weighted_log_likelihood
from .elbo import ELBOTerms, elbo_terms, reconstruction_targets
from .vsan import VSAN

__all__ = [
    "BetaSchedule",
    "ConstantBeta",
    "ELBOTerms",
    "KLAnnealing",
    "VSAN",
    "elbo_terms",
    "importance_weighted_log_likelihood",
    "reconstruction_targets",
]
