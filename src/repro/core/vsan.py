"""VSAN — the Variational Self-Attention Network (Section IV of the paper).

Pipeline (Figure 2):

1. **Embedding Layer** (IV-A): item + learnable position embeddings of
   the last ``n`` interactions, left-padded (Eq. 4).
2. **Inference Self-attention Layer** (IV-B): ``h1`` causal
   self-attention blocks (Eq. 5–11) produce ``G_i``; two linear heads
   give the variational posterior parameters ``mu`` and ``sigma``
   (Eq. 12).  The paper writes ``sigma = l2(G)`` with a bare linear map;
   a bare linear can emit negative scale, so we parameterize
   ``sigma = softplus(l2(G)) + eps`` — a strictly-positive smooth
   reparameterization of the same head (documented substitution, see
   DESIGN.md §5).
3. **Latent Variable Layer** (IV-C): reparameterization trick
   ``z = mu + sigma * eps`` with ``eps ~ N(0, I)`` (Eq. 13).
4. **Generative Self-attention Layer** (IV-D): ``h2`` blocks over ``z``
   (Eq. 15–17) produce ``G_g``.
5. **Prediction Layer** (IV-E): a dense softmax over all items (Eq. 19);
   evaluation uses ``z = mu`` (posterior mean), as in the paper.

Training minimizes the β-ELBO of Eq. 20 — reconstruction cross-entropy
(one-hot next item, or multi-hot next ``k`` per Eq. 18) plus
``beta * KL(q(z|S) || N(0, I))`` with the annealed β schedule.

Ablation switches reproduce the paper's component studies:

- ``h1=0`` / ``h2=0``: drop the inference / generative stacks (Table IV);
- ``use_latent=False``: bypass the latent variable layer entirely —
  ``G_i`` feeds the generative stack directly (**VSAN-z**, Table V);
- ``inference_feedforward`` / ``generative_feedforward``: remove the
  point-wise FFN from either stack (**VSAN-*-feed**, Table VI);
- ``sample_at_eval``: score from a sampled ``z`` instead of the mean
  (extra ablation, DESIGN.md §5);
- ``tie_weights``: score against the item embedding table instead of the
  separate ``W_g`` of Eq. 19 (extra ablation, DESIGN.md §5).
"""

from __future__ import annotations

import numpy as np

from ..models.base import NeuralSequentialRecommender
from ..models.common import SequenceEmbedding
from ..nn import LayerNorm, Linear, SelfAttentionStack
from ..tensor import Tensor
from ..tensor.compile import record_host, tracing
from ..tensor.random import spawn_rngs
from ..train.annealing import BetaSchedule, KLAnnealing
from .elbo import ELBOTerms, elbo_terms, reconstruction_targets

__all__ = ["VSAN"]


class VSAN(NeuralSequentialRecommender):
    """Variational self-attention network for sequential recommendation.

    Args:
        num_items: vocabulary size N.
        max_length: attention window ``n`` (paper: 50 on Beauty, 200 on
            ML-1M; scale to your data).
        dim: embedding width ``d`` (paper: 200).
        h1: inference self-attention blocks (paper: 1 on Beauty, 3 on
            ML-1M).
        h2: generative self-attention blocks (paper: 1 on both).
        k: predict the next ``k`` items per position (paper: 2).
        num_heads: attention heads (1 = the paper's single-head setting).
        dropout_rate: dropout applied to embeddings and block sub-layers
            (paper: 0.5 on Beauty, 0.2 on ML-1M).
        annealing: β schedule for the KL term; default linear annealing.
        use_latent: set False for the VSAN-z ablation.
        inference_feedforward / generative_feedforward: set False for the
            Table VI feed-forward ablations.
        sample_at_eval: score from sampled ``z`` instead of the mean.
        tie_weights: replace the separate output projection with the item
            embedding table.
        sigma_bias_init: initial bias of the σ-head (σ ≈ softplus(bias);
            the −3 default keeps early noise small — see the module note).
        positions: ``"learnable"`` (paper, Eq. 4) or ``"sinusoidal"``.
        num_samples: Monte-Carlo samples per training step for the
            reconstruction expectation (1 = the paper; >1 is our
            lower-variance extension).
        norm_first: pre-norm blocks instead of the paper's post-norm
            (helps deep stacks; see ``repro.nn.blocks``).
        fused: run attention / layer-norm / cross-entropy through the
            fused kernels of :mod:`repro.tensor.fused` (default); set
            False for the composed reference substrate (used by the
            fused-vs-reference parity tests).
        seed: controls init / dropout / reparameterization streams.
    """

    name = "VSAN"
    # Position embeddings are right-aligned and padded keys are masked
    # out of attention exactly, so column-trimmed batches are loss- and
    # gradient-identical (see NeuralSequentialRecommender).
    supports_trimming = True

    def __init__(
        self,
        num_items: int,
        max_length: int,
        dim: int = 48,
        h1: int = 1,
        h2: int = 1,
        k: int = 1,
        num_heads: int = 1,
        dropout_rate: float = 0.2,
        annealing: BetaSchedule | None = None,
        use_latent: bool = True,
        inference_feedforward: bool = True,
        generative_feedforward: bool = True,
        sample_at_eval: bool = False,
        tie_weights: bool = False,
        sigma_bias_init: float = -3.0,
        positions: str = "learnable",
        num_samples: int = 1,
        norm_first: bool = False,
        fused: bool = True,
        seed: int = 0,
    ):
        super().__init__(num_items, max_length)
        if h1 < 0 or h2 < 0:
            raise ValueError("h1 and h2 must be >= 0")
        if k < 1:
            raise ValueError("k must be >= 1")
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        init_rng, dropout_rng, self._noise_rng = spawn_rngs(seed, 3)
        self.dim = dim
        self.h1 = h1
        self.h2 = h2
        self.k = k
        # Next-k supervision reaches k-1 positions into the leading pad;
        # batch trimming must keep that many extra columns to stay exact.
        self.target_window = k
        self.num_samples = num_samples
        self.use_latent = use_latent
        self.sample_at_eval = sample_at_eval
        self.tie_weights = tie_weights
        self.annealing = annealing or KLAnnealing()
        self._step = 0

        self.embedding = SequenceEmbedding(
            num_items,
            max_length,
            dim,
            init_rng,
            dropout_rate=dropout_rate,
            dropout_rng=dropout_rng,
            positions=positions,
        )
        self.fused = fused
        self.inference_stack = SelfAttentionStack(
            dim,
            h1,
            init_rng,
            num_heads=num_heads,
            dropout_rate=dropout_rate,
            use_feedforward=inference_feedforward,
            dropout_rng=dropout_rng,
            norm_first=norm_first,
            fused=fused,
        )
        if use_latent:
            self.mu_head = Linear(dim, dim, init_rng)
            self.sigma_head = Linear(dim, dim, init_rng)
            # Identity-initialize the mean head: at step 0 the latent
            # layer then passes G_i through unchanged (plus small noise),
            # so introducing the latent variable never *starts* the model
            # behind its deterministic ablation — the ELBO bends the map
            # away from identity only where that pays.
            self.mu_head.weight.data[...] = np.eye(dim)
            # Start with a small posterior scale (sigma ~= softplus(bias))
            # so early training is signal-dominated; variance then grows
            # only where the ELBO prefers it.  Without this the injected
            # noise initially drowns the self-attention signal.
            self.sigma_head.bias.data[...] = sigma_bias_init
        self.generative_stack = SelfAttentionStack(
            dim,
            h2,
            init_rng,
            num_heads=num_heads,
            dropout_rate=dropout_rate,
            use_feedforward=generative_feedforward,
            dropout_rng=dropout_rng,
            norm_first=norm_first,
            fused=fused,
        )
        self.final_norm = LayerNorm(dim, fused=fused)
        if not tie_weights:
            self.output = Linear(dim, num_items + 1, init_rng)

    # ------------------------------------------------------------------
    # Training state beyond parameters (checkpoint/resume)
    # ------------------------------------------------------------------
    def extra_state(self) -> dict:
        """The β-schedule position: restoring it keeps the annealed KL
        weight of Eq. 20 continuous across a checkpoint resume."""
        return {"step": self._step}

    def load_extra_state(self, state: dict) -> None:
        self._step = int(state["step"])

    # ------------------------------------------------------------------
    # Pieces of the pipeline (named after the paper's layers)
    # ------------------------------------------------------------------
    def inference_layer(
        self, padded: np.ndarray
    ) -> tuple[Tensor, np.ndarray, np.ndarray]:
        """Embedding Layer + Inference Self-attention Layer -> ``G_i``."""
        embedded, timeline_mask, key_padding_mask = self.embedding(padded)
        encoded = self.inference_stack(
            embedded,
            key_padding_mask=key_padding_mask,
            timeline_mask=timeline_mask,
        )
        return encoded, timeline_mask, key_padding_mask

    def posterior(self, encoded: Tensor) -> tuple[Tensor, Tensor]:
        """Variational parameters of Eq. 12 (softplus-positive sigma)."""
        if not self.use_latent:
            raise RuntimeError("posterior is undefined when use_latent=False")
        mu = self.mu_head(encoded)
        sigma = self.sigma_head(encoded).softplus() + 1e-4
        return mu, sigma

    def latent_layer(self, mu: Tensor, sigma: Tensor,
                     sample: bool) -> Tensor:
        """Latent Variable Layer (Eq. 13): reparameterized sample or mean."""
        if not sample:
            return mu
        rng = self._noise_rng
        noise = Tensor(rng.standard_normal(mu.shape))
        if tracing():
            # RNG tap: replay draws from the same generator object, so the
            # reparameterization stream advances exactly as eager would.
            buf, shape = noise.data, mu.shape
            record_host(lambda: np.copyto(buf, rng.standard_normal(shape)))
        return mu + sigma * noise

    def generative_layer(
        self,
        z: Tensor,
        timeline_mask: np.ndarray,
        key_padding_mask: np.ndarray,
    ) -> Tensor:
        """Generative Self-attention Layer (Eq. 15–17) -> ``G_g``."""
        decoded = self.generative_stack(
            z,
            key_padding_mask=key_padding_mask,
            timeline_mask=timeline_mask,
        )
        return self.final_norm(decoded)

    def prediction_layer(self, hidden: Tensor) -> Tensor:
        """Prediction Layer (Eq. 19): logits over the catalogue."""
        if self.tie_weights:
            return hidden @ self.embedding.item_embedding.weight.T
        return self.output(hidden)

    # ------------------------------------------------------------------
    # Forward passes
    # ------------------------------------------------------------------
    def _forward(
        self, padded: np.ndarray, sample: bool
    ) -> tuple[Tensor, Tensor | None, Tensor | None, np.ndarray]:
        """Run the full pipeline; returns (logits, mu, sigma, timeline)."""
        encoded, timeline_mask, key_padding_mask = self.inference_layer(
            padded
        )
        if self.use_latent:
            mu, sigma = self.posterior(encoded)
            z = self.latent_layer(mu, sigma, sample=sample)
        else:
            mu = sigma = None
            z = encoded
        hidden = self.generative_layer(z, timeline_mask, key_padding_mask)
        return self.prediction_layer(hidden), mu, sigma, timeline_mask

    def forward_scores(self, padded: np.ndarray) -> Tensor:
        sample = self.training or self.sample_at_eval
        logits, _, _, _ = self._forward(padded, sample=sample)
        return logits

    def forward_last(self, padded: np.ndarray) -> Tensor:
        """Last-position logits with the O(|I|) prediction fast path.

        The attention stacks still see the whole window (causality needs
        it), but the hidden state is sliced to the final position *before*
        the Eq. 19 item-vocabulary GEMM, and the σ-head is skipped
        entirely — at the posterior mean only ``mu`` feeds the decoder.
        """
        if self.training or self.sample_at_eval:
            # Sampling draws noise for every position; keep the full path
            # so the reparameterization RNG stream matches forward_scores.
            return super().forward_last(padded)
        return self.prediction_layer(self.forward_last_hidden(padded))

    # ------------------------------------------------------------------
    # Approximate-retrieval hooks (repro.retrieval)
    # ------------------------------------------------------------------
    @property
    def supports_retrieval(self) -> bool:
        # Sampling at eval draws fresh reparameterization noise per call:
        # there is no deterministic query vector to index against.
        return not self.sample_at_eval

    def forward_last_hidden(self, padded: np.ndarray) -> Tensor:
        """The deterministic (posterior-mean) hidden state that feeds the
        Eq. 19 prediction GEMM, sliced to the final position (eval-mode
        only — training must keep the sampling RNG stream intact)."""
        encoded, timeline_mask, key_padding_mask = self.inference_layer(
            padded
        )
        z = self.mu_head(encoded) if self.use_latent else encoded
        hidden = self.generative_layer(z, timeline_mask, key_padding_mask)
        return hidden[:, -1, :]

    def output_head(self) -> tuple[np.ndarray, np.ndarray | None]:
        if self.tie_weights:
            return self.embedding.item_embedding.weight.data.T, None
        bias = (
            self.output.bias.data if self.output.bias is not None else None
        )
        return self.output.weight.data, bias

    def training_elbo(self, padded: np.ndarray) -> ELBOTerms:
        """β-ELBO of Eq. 20 over a padded batch, terms kept separate.

        With ``num_samples > 1`` the reconstruction expectation
        ``E_q[log p(S|z)]`` is Monte-Carlo averaged over that many
        reparameterized samples per step (a lower-variance gradient
        estimate — our extension; the paper uses a single sample).
        """
        inputs, targets, weights, multi_hot = reconstruction_targets(
            padded,
            self.k,
            self.num_items,
            out=(
                self._target_buffer(padded.shape[0], padded.shape[1] - 1)
                if self.k > 1
                else None
            ),
        )
        beta = self.annealing.beta(self._step)
        if self.training:
            self._step += 1

        if not self.use_latent or self.num_samples == 1:
            logits, mu, sigma, _ = self._forward(inputs, sample=True)
            return elbo_terms(
                logits, targets, weights, mu, sigma, beta, multi_hot,
                fused=self.fused,
            )

        # Multi-sample path: encode once, decode per sample.
        encoded, timeline_mask, key_padding_mask = self.inference_layer(
            inputs
        )
        mu, sigma = self.posterior(encoded)
        terms = None
        for _ in range(self.num_samples):
            z = self.latent_layer(mu, sigma, sample=True)
            hidden = self.generative_layer(
                z, timeline_mask, key_padding_mask
            )
            logits = self.prediction_layer(hidden)
            sample_terms = elbo_terms(
                logits, targets, weights, mu, sigma, beta, multi_hot,
                fused=self.fused,
            )
            if terms is None:
                terms = sample_terms
            else:
                terms = ELBOTerms(
                    reconstruction=(
                        terms.reconstruction + sample_terms.reconstruction
                    ),
                    kl=terms.kl,
                    beta=beta,
                )
        return ELBOTerms(
            reconstruction=terms.reconstruction * (1.0 / self.num_samples),
            kl=terms.kl,
            beta=beta,
        )

    def training_loss(self, padded: np.ndarray) -> Tensor:
        return self.training_elbo(padded).loss

    # ------------------------------------------------------------------
    # Compiled-execution hooks (repro.tensor.compile)
    # ------------------------------------------------------------------
    def compile_beta_zero(self) -> bool:
        """Whether the *next* step's β is exactly zero (pure peek).

        ``ELBOTerms.loss`` drops the KL term structurally at β == 0, so
        compiled training programs are keyed on this flag and retraced
        when an annealing schedule crosses zero.
        """
        return self.annealing.beta(self._step) == 0.0

    def compile_step_feeds(self) -> dict[str, float]:
        """Per-step feed values for a replayed training program.

        Performs the out-of-graph bookkeeping a traced ``training_elbo``
        did internally: computes this step's β and advances ``_step``.
        """
        beta = self.annealing.beta(self._step)
        if self.training:
            self._step += 1
        return {"beta": beta}
