"""Model persistence: save/load parameters plus constructor config.

Checkpoints are plain ``.npz`` archives holding every parameter array
(keys are the dotted ``named_parameters`` names) plus a ``__config__``
JSON blob with the model class name and constructor kwargs, so a model
can be rebuilt without the caller re-specifying hyperparameters::

    save_checkpoint(model, "vsan.npz", config={"num_items": N, ...})
    model = load_checkpoint("vsan.npz", registry={"VSAN": VSAN})
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "load_state"]

_CONFIG_KEY = "__config__"


def save_checkpoint(
    model: Module,
    path: str | Path,
    config: dict | None = None,
) -> Path:
    """Write parameters (and optionally the build config) to ``path``.

    Args:
        model: any :class:`repro.nn.Module`.
        path: target file; ``.npz`` is appended by numpy if missing.
        config: JSON-serializable constructor kwargs.  When given, the
            model's class name is stored alongside so
            :func:`load_checkpoint` can rebuild the object.
    """
    path = Path(path)
    arrays = dict(model.state_dict())
    if _CONFIG_KEY in arrays:
        raise ValueError(f"parameter name {_CONFIG_KEY!r} is reserved")
    meta = {"class": type(model).__name__, "config": config}
    arrays[_CONFIG_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz"
    )


def _read(path: str | Path) -> tuple[dict, dict[str, np.ndarray]]:
    with np.load(path) as archive:
        arrays = {key: archive[key] for key in archive.files}
    raw = arrays.pop(_CONFIG_KEY, None)
    meta = (
        json.loads(raw.tobytes().decode("utf-8")) if raw is not None else {}
    )
    return meta, arrays


def load_state(model: Module, path: str | Path) -> Module:
    """Load a checkpoint's parameters into an already-built model."""
    _, arrays = _read(path)
    model.load_state_dict(arrays)
    return model


def load_checkpoint(path: str | Path, registry: dict[str, type]) -> Module:
    """Rebuild a model from a checkpoint written with ``config``.

    Args:
        path: the ``.npz`` file.
        registry: class-name -> class mapping (e.g. ``{"VSAN": VSAN}``);
            an explicit registry keeps loading free of import magic.
    """
    meta, arrays = _read(path)
    class_name = meta.get("class")
    config = meta.get("config")
    if not class_name or config is None:
        raise ValueError(
            f"{path} was saved without a config; build the model yourself "
            "and call load_state instead"
        )
    if class_name not in registry:
        raise KeyError(
            f"checkpoint wants class {class_name!r}; registry has "
            f"{sorted(registry)}"
        )
    model = registry[class_name](**config)
    model.load_state_dict(arrays)
    return model
