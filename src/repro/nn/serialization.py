"""Model persistence: save/load parameters plus constructor config.

Checkpoints are plain ``.npz`` archives holding every parameter array
(keys are the dotted ``named_parameters`` names) plus a ``__config__``
JSON blob with the model class name and constructor kwargs, so a model
can be rebuilt without the caller re-specifying hyperparameters::

    save_checkpoint(model, "vsan.npz", config={"num_items": N, ...})
    model = load_checkpoint("vsan.npz", registry={"VSAN": VSAN})

All read paths raise :class:`CheckpointError` for anything wrong with
the file itself — missing, truncated, bit-flipped, or not an ``.npz``
archive at all — so callers never see a raw ``zipfile``/``pickle``
traceback for what is really "this checkpoint is corrupt".
"""

from __future__ import annotations

import json
import pickle
import zipfile
import zlib
from pathlib import Path

import numpy as np

from .module import Module

__all__ = [
    "CheckpointError",
    "load_archive",
    "save_checkpoint",
    "load_checkpoint",
    "load_state",
]

_CONFIG_KEY = "__config__"


class CheckpointError(ValueError):
    """A checkpoint file is missing, corrupt, or structurally invalid.

    Raised by every checkpoint reader (:func:`load_checkpoint`,
    :func:`load_state`, and the training-state loader in
    :mod:`repro.train.checkpoint`) instead of the raw ``zipfile`` /
    ``pickle`` / ``EOFError`` a damaged file would otherwise produce.
    Subclasses :class:`ValueError` so pre-existing callers that caught
    ``ValueError`` from the load paths keep working.
    """


def load_archive(path: str | Path) -> dict[str, np.ndarray]:
    """Read every array of an ``.npz`` archive, fully materialized.

    Unlike a bare ``np.load``, any failure mode of a damaged file — a
    missing path, a truncated or bit-flipped archive, a member that
    fails CRC/zlib checks while being decompressed, or a non-npz file —
    surfaces as :class:`CheckpointError` naming the file.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint {path} does not exist")
    try:
        with np.load(path, allow_pickle=False) as archive:
            return {key: archive[key] for key in archive.files}
    except CheckpointError:
        raise
    except (
        zipfile.BadZipFile,
        zlib.error,
        pickle.UnpicklingError,
        EOFError,
        OSError,
        KeyError,
        ValueError,
    ) as error:
        raise CheckpointError(
            f"checkpoint {path} is corrupt or not a checkpoint archive: "
            f"{error}"
        ) from error


def save_checkpoint(
    model: Module,
    path: str | Path,
    config: dict | None = None,
) -> Path:
    """Write parameters (and optionally the build config) to ``path``.

    Args:
        model: any :class:`repro.nn.Module`.
        path: target file; ``.npz`` is appended by numpy if missing.
        config: JSON-serializable constructor kwargs.  When given, the
            model's class name is stored alongside so
            :func:`load_checkpoint` can rebuild the object.
    """
    path = Path(path)
    arrays = dict(model.state_dict())
    if _CONFIG_KEY in arrays:
        raise ValueError(f"parameter name {_CONFIG_KEY!r} is reserved")
    meta = {"class": type(model).__name__, "config": config}
    arrays[_CONFIG_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz"
    )


def _read(path: str | Path) -> tuple[dict, dict[str, np.ndarray]]:
    arrays = load_archive(path)
    raw = arrays.pop(_CONFIG_KEY, None)
    try:
        meta = (
            json.loads(raw.tobytes().decode("utf-8"))
            if raw is not None
            else {}
        )
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise CheckpointError(
            f"checkpoint {path} has a corrupt config blob: {error}"
        ) from error
    return meta, arrays


def load_state(model: Module, path: str | Path) -> Module:
    """Load a checkpoint's parameters into an already-built model."""
    _, arrays = _read(path)
    model.load_state_dict(arrays)
    return model


def load_checkpoint(path: str | Path, registry: dict[str, type]) -> Module:
    """Rebuild a model from a checkpoint written with ``config``.

    Args:
        path: the ``.npz`` file.
        registry: class-name -> class mapping (e.g. ``{"VSAN": VSAN}``);
            an explicit registry keeps loading free of import magic.
    """
    meta, arrays = _read(path)
    class_name = meta.get("class")
    config = meta.get("config")
    if not class_name or config is None:
        raise ValueError(
            f"{path} was saved without a config; build the model yourself "
            "and call load_state instead"
        )
    if class_name not in registry:
        raise KeyError(
            f"checkpoint wants class {class_name!r}; registry has "
            f"{sorted(registry)}"
        )
    model = registry[class_name](**config)
    model.load_state_dict(arrays)
    return model
