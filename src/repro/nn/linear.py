"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from . import init
from .module import Module, Parameter

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x W + b`` applied to the last axis.

    Weight shape is ``(in_features, out_features)`` so batched inputs of
    shape ``(..., in_features)`` flow straight through ``matmul``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform(rng, (in_features, out_features))
        )
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out
