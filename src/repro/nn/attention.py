"""Scaled dot-product causal self-attention (Eq. 5–6 / 15 of the paper).

The paper's inference and generative layers both use single-head
dot-product attention with ``d x d`` projection matrices and a causal
mask that "prohibits all links between Q_i and K_j for j > i" so position
``i`` never sees future items.  Multi-head operation is supported as a
configurable extension (``num_heads=1`` reproduces the paper exactly).
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, softmax
from . import init
from .module import Module, Parameter

__all__ = ["CausalSelfAttention", "causal_mask"]


def causal_mask(length: int) -> np.ndarray:
    """Boolean mask of shape ``(length, length)``; True where j > i
    (positions that must be hidden from the query at i)."""
    return np.triu(np.ones((length, length), dtype=bool), k=1)


class CausalSelfAttention(Module):
    """Causal self-attention: ``softmax(Q K^T / sqrt(d)) V``.

    Args:
        dim: model width ``d``; queries/keys/values are all ``d x d``
            projections of the input, as in Eq. 6.
        rng: generator for weight init.
        num_heads: number of attention heads (1 = the paper's setting).
        use_bias: include bias terms on the projections (paper uses none).
    """

    def __init__(
        self,
        dim: int,
        rng: np.random.Generator,
        num_heads: int = 1,
        use_bias: bool = False,
    ):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.w_query = Parameter(init.xavier_uniform(rng, (dim, dim)))
        self.w_key = Parameter(init.xavier_uniform(rng, (dim, dim)))
        self.w_value = Parameter(init.xavier_uniform(rng, (dim, dim)))
        if use_bias:
            self.b_query = Parameter(init.zeros((dim,)))
            self.b_key = Parameter(init.zeros((dim,)))
            self.b_value = Parameter(init.zeros((dim,)))
        else:
            self.b_query = self.b_key = self.b_value = None

    def forward(
        self,
        x: Tensor,
        key_padding_mask: np.ndarray | None = None,
        return_weights: bool = False,
    ):
        """Attend causally over the sequence axis.

        Args:
            x: input of shape ``(batch, length, dim)``.
            key_padding_mask: optional boolean ``(batch, length)`` array,
                True at *padded* key positions.  The diagonal is always
                left attendable so fully-padded prefixes cannot produce an
                all-masked (NaN) softmax row; padded query outputs are
                zeroed by callers via the timeline mask.
            return_weights: also return the attention distribution
                ``(batch, heads, length, length)`` for inspection.
        """
        batch, length, dim = x.shape
        if dim != self.dim:
            raise ValueError(f"expected last dim {self.dim}, got {dim}")

        queries = x @ self.w_query
        keys = x @ self.w_key
        values = x @ self.w_value
        if self.b_query is not None:
            queries = queries + self.b_query
            keys = keys + self.b_key
            values = values + self.b_value

        heads = self.num_heads
        head_dim = self.head_dim
        # (batch, length, dim) -> (batch, heads, length, head_dim)
        queries = queries.reshape(batch, length, heads, head_dim).swapaxes(1, 2)
        keys = keys.reshape(batch, length, heads, head_dim).swapaxes(1, 2)
        values = values.reshape(batch, length, heads, head_dim).swapaxes(1, 2)

        scores = (queries @ keys.swapaxes(-1, -2)) * (1.0 / np.sqrt(head_dim))

        mask = causal_mask(length)[None, None, :, :]
        if key_padding_mask is not None:
            pad = np.asarray(key_padding_mask, dtype=bool)
            if pad.shape != (batch, length):
                raise ValueError(
                    f"key_padding_mask shape {pad.shape} != "
                    f"{(batch, length)}"
                )
            pad = pad[:, None, None, :] | mask
            # Keep the diagonal attendable to avoid all-masked rows.
            diagonal = np.eye(length, dtype=bool)[None, None, :, :]
            mask = pad & ~diagonal
        else:
            mask = np.broadcast_to(mask, (batch, heads, length, length))

        scores = scores.masked_fill(mask, -1e30)
        weights = softmax(scores, axis=-1)
        attended = weights @ values
        out = attended.swapaxes(1, 2).reshape(batch, length, dim)
        if return_weights:
            return out, weights
        return out
