"""Scaled dot-product causal self-attention (Eq. 5–6 / 15 of the paper).

The paper's inference and generative layers both use single-head
dot-product attention with ``d x d`` projection matrices and a causal
mask that "prohibits all links between Q_i and K_j for j > i" so position
``i`` never sees future items.  Multi-head operation is supported as a
configurable extension (``num_heads=1`` reproduces the paper exactly).

Two execution paths share the projection weights:

- the default **fused** path (:func:`repro.tensor.fused.fused_attention`)
  runs mask → softmax → weighted sum as a single tape node with a
  hand-derived backward and one attention-weights buffer;
- the **composed** path (``fused=False``) builds the same computation
  from tape primitives and is kept as the reference the gradcheck/parity
  suite compares against.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..tensor import Tensor, fused_attention, masked_fill_value, softmax
from ..tensor.compile import mark_dynamic, record_host, tracing
from . import init
from .module import Module, Parameter

__all__ = ["CausalSelfAttention", "causal_mask"]


@lru_cache(maxsize=64)
def _causal_mask_cached(length: int) -> np.ndarray:
    mask = np.triu(np.ones((length, length), dtype=bool), k=1)
    mask.setflags(write=False)
    return mask


def causal_mask(length: int) -> np.ndarray:
    """Boolean mask of shape ``(length, length)``; True where j > i
    (positions that must be hidden from the query at i).

    Memoized per length — attention rebuilds it every forward call — and
    returned read-only; copy before mutating.
    """
    return _causal_mask_cached(length)


class CausalSelfAttention(Module):
    """Causal self-attention: ``softmax(Q K^T / sqrt(d)) V``.

    Args:
        dim: model width ``d``; queries/keys/values are all ``d x d``
            projections of the input, as in Eq. 6.
        rng: generator for weight init.
        num_heads: number of attention heads (1 = the paper's setting).
        use_bias: include bias terms on the projections (paper uses none).
        fused: use the fused single-node attention kernel (default); set
            False for the composed reference path.
    """

    def __init__(
        self,
        dim: int,
        rng: np.random.Generator,
        num_heads: int = 1,
        use_bias: bool = False,
        fused: bool = True,
    ):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.fused = fused
        self.w_query = Parameter(init.xavier_uniform(rng, (dim, dim)))
        self.w_key = Parameter(init.xavier_uniform(rng, (dim, dim)))
        self.w_value = Parameter(init.xavier_uniform(rng, (dim, dim)))
        if use_bias:
            self.b_query = Parameter(init.zeros((dim,)))
            self.b_key = Parameter(init.zeros((dim,)))
            self.b_value = Parameter(init.zeros((dim,)))
        else:
            self.b_query = self.b_key = self.b_value = None
        # Scratch buffer for the combined causal|padding mask, reused
        # across forward calls of the same (batch, length) shape.  Only
        # the fused path may reuse it: the composed path's masked_fill
        # closure retains the mask for its backward.
        self._mask_scratch: np.ndarray | None = None

    def _combined_mask(
        self, key_padding_mask: np.ndarray, batch: int, length: int
    ) -> np.ndarray:
        """``(causal | padding) & ~diagonal`` into a reusable buffer."""
        pad = np.asarray(key_padding_mask, dtype=bool)
        if pad.shape != (batch, length):
            raise ValueError(
                f"key_padding_mask shape {pad.shape} != {(batch, length)}"
            )
        shape = (batch, 1, length, length)
        reusable = self.fused
        if reusable and (
            self._mask_scratch is not None
            and self._mask_scratch.shape == shape
        ):
            buffer = self._mask_scratch
        else:
            buffer = np.empty(shape, dtype=bool)
            if reusable:
                self._mask_scratch = buffer
        causal = causal_mask(length)[None, None, :, :]
        diagonal = np.arange(length)

        def fill():
            np.copyto(buffer, causal)
            np.bitwise_or(buffer, pad[:, None, None, :], out=buffer)
            # Keep the diagonal attendable to avoid all-masked (NaN) rows.
            buffer[:, :, diagonal, diagonal] = False

        fill()
        if tracing():
            if pad is not key_padding_mask:
                mark_dynamic("key_padding_mask required a bool copy")
            else:
                record_host(fill)
        return buffer

    def forward(
        self,
        x: Tensor,
        key_padding_mask: np.ndarray | None = None,
        return_weights: bool = False,
    ):
        """Attend causally over the sequence axis.

        Args:
            x: input of shape ``(batch, length, dim)``.
            key_padding_mask: optional boolean ``(batch, length)`` array,
                True at *padded* key positions.  The diagonal is always
                left attendable so fully-padded prefixes cannot produce an
                all-masked (NaN) softmax row; padded query outputs are
                zeroed by callers via the timeline mask.
            return_weights: also return the attention distribution
                ``(batch, heads, length, length)`` for inspection.
        """
        batch, length, dim = x.shape
        if dim != self.dim:
            raise ValueError(f"expected last dim {self.dim}, got {dim}")

        queries = x @ self.w_query
        keys = x @ self.w_key
        values = x @ self.w_value
        if self.b_query is not None:
            queries = queries + self.b_query
            keys = keys + self.b_key
            values = values + self.b_value

        heads = self.num_heads
        head_dim = self.head_dim
        # (batch, length, dim) -> (batch, heads, length, head_dim)
        queries = queries.reshape(batch, length, heads, head_dim).swapaxes(1, 2)
        keys = keys.reshape(batch, length, heads, head_dim).swapaxes(1, 2)
        values = values.reshape(batch, length, heads, head_dim).swapaxes(1, 2)

        scale = 1.0 / np.sqrt(head_dim)
        if key_padding_mask is not None:
            mask = self._combined_mask(key_padding_mask, batch, length)
        else:
            mask = causal_mask(length)[None, None, :, :]

        if self.fused:
            fused_out = fused_attention(
                queries,
                keys,
                values,
                mask,
                scale,
                return_weights=return_weights,
            )
            if return_weights:
                attended, weights = fused_out
            else:
                attended = fused_out
        else:
            scores = (queries @ keys.swapaxes(-1, -2)) * scale
            # The composed path retains the mask in the masked_fill
            # closure, so hand it a private (broadcast) copy.
            full_mask = np.broadcast_to(
                mask, (batch, heads, length, length)
            ).copy()
            if tracing() and key_padding_mask is not None:
                record_host(lambda: np.copyto(full_mask, mask))
            scores = scores.masked_fill(
                full_mask, masked_fill_value(scores.dtype)
            )
            weights = softmax(scores, axis=-1)
            attended = weights @ values

        out = attended.swapaxes(1, 2).reshape(batch, length, dim)
        if return_weights:
            return out, weights
        return out
