"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so model
construction is deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "normal", "zeros", "uniform"]


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...],
                   gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(rng: np.random.Generator, shape: tuple[int, ...],
                  gain: float = 1.0) -> np.ndarray:
    """Glorot normal: N(0, gain^2 * 2 / (fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def normal(rng: np.random.Generator, shape: tuple[int, ...],
           std: float = 0.01) -> np.ndarray:
    """Plain Gaussian init (the classic recsys embedding default)."""
    return rng.normal(0.0, std, size=shape)


def uniform(rng: np.random.Generator, shape: tuple[int, ...],
            low: float = -0.05, high: float = 0.05) -> np.ndarray:
    return rng.uniform(low, high, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initializer needs at least a 1-D shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[1] * receptive, shape[0] * receptive
