"""Embedding lookup table with padding support.

Sequential recommenders left-pad short sequences with a reserved item id
(index 0 throughout this repository, matching the paper's "zero vector"
padding).  Lookups of ``padding_idx`` return exactly zero and contribute
no gradient, so padded positions never leak into attention values or the
loss.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from ..tensor.compile import mark_dynamic, record_host, tracing
from . import init
from .module import Module, Parameter

__all__ = ["Embedding"]


class Embedding(Module):
    """Map integer ids of any shape to dense rows of shape ``(..., dim)``."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator,
        padding_idx: int | None = None,
        std: float | None = None,
    ):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        if std is None:
            table = init.xavier_normal(rng, (num_embeddings, embedding_dim))
        else:
            table = init.normal(rng, (num_embeddings, embedding_dim), std=std)
        if padding_idx is not None:
            table[padding_idx] = 0.0
        self.weight = Parameter(table)

    def forward(self, indices: np.ndarray) -> Tensor:
        source = indices
        indices = np.asarray(indices, dtype=np.int64)
        if indices.min() < 0 or indices.max() >= self.num_embeddings:
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings})"
            )
        # Replay note: the range validation above runs at trace time only;
        # replayed programs reuse this gather with refreshed indices.
        if tracing() and indices is not source:
            mark_dynamic("embedding indices required a dtype copy")
        rows = self.weight.take_rows(indices)
        if self.padding_idx is not None:
            keep = (indices != self.padding_idx).astype(rows.dtype)
            if tracing():
                pidx = self.padding_idx
                record_host(
                    lambda: np.not_equal(indices, pidx, out=keep)
                )
            rows = rows * Tensor(keep[..., None])
        return rows
