"""Gated recurrent units, the substrate for the GRU4Rec and SVAE baselines.

Implemented from the engine's primitives (matmul / sigmoid / tanh), with
the standard gate equations:

    r_t = sigmoid(x_t W_r + h_{t-1} U_r + b_r)
    z_t = sigmoid(x_t W_z + h_{t-1} U_z + b_z)
    n_t = tanh(x_t W_n + r_t * (h_{t-1} U_n) + b_n)
    h_t = (1 - z_t) * n_t + z_t * h_{t-1}
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, stack, zeros
from . import init
from .module import Module, ModuleList, Parameter

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """A single GRU step over a batch of inputs."""

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_input = Parameter(
            init.xavier_uniform(rng, (input_dim, 3 * hidden_dim))
        )
        self.w_hidden = Parameter(
            init.xavier_uniform(rng, (hidden_dim, 3 * hidden_dim))
        )
        self.bias = Parameter(init.zeros((3 * hidden_dim,)))

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        """One step: ``x`` is ``(batch, input_dim)``, ``hidden`` is
        ``(batch, hidden_dim)``; returns the new hidden state."""
        dim = self.hidden_dim
        gates_x = x @ self.w_input + self.bias
        gates_h = hidden @ self.w_hidden
        reset = (gates_x[:, :dim] + gates_h[:, :dim]).sigmoid()
        update = (gates_x[:, dim:2 * dim] + gates_h[:, dim:2 * dim]).sigmoid()
        candidate = (
            gates_x[:, 2 * dim:] + reset * gates_h[:, 2 * dim:]
        ).tanh()
        return (1.0 - update) * candidate + update * hidden


class GRU(Module):
    """(Possibly multi-layer) GRU unrolled over the time axis."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
        num_layers: int = 1,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("GRU needs at least one layer")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        cells = []
        for layer in range(num_layers):
            cells.append(
                GRUCell(input_dim if layer == 0 else hidden_dim,
                        hidden_dim, rng)
            )
        self.cells = ModuleList(cells)

    def forward(
        self,
        x: Tensor,
        initial_hidden: list[Tensor] | None = None,
    ) -> tuple[Tensor, list[Tensor]]:
        """Run over a full sequence.

        Args:
            x: ``(batch, length, input_dim)``.
            initial_hidden: optional per-layer ``(batch, hidden_dim)``
                states; defaults to zeros.

        Returns:
            ``(outputs, finals)`` where ``outputs`` is
            ``(batch, length, hidden_dim)`` from the top layer and
            ``finals`` holds each layer's last hidden state.
        """
        batch, length, _ = x.shape
        if initial_hidden is None:
            hiddens = [
                zeros((batch, self.hidden_dim)) for _ in range(self.num_layers)
            ]
        else:
            if len(initial_hidden) != self.num_layers:
                raise ValueError("initial_hidden must have one state per layer")
            hiddens = list(initial_hidden)

        top_outputs: list[Tensor] = []
        for t in range(length):
            step_input = x[:, t, :]
            for layer, cell in enumerate(self.cells):
                hiddens[layer] = cell(step_input, hiddens[layer])
                step_input = hiddens[layer]
            top_outputs.append(step_input)
        return stack(top_outputs, axis=1), hiddens
