"""Parameter and Module base classes for the neural-network layer zoo.

A thin registration system in the style every deep-learning framework
uses: attributes that are :class:`Parameter` or :class:`Module` instances
are discovered automatically, so ``model.parameters()`` walks the whole
tree and ``state_dict`` round-trips weights for persistence tests.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator

import numpy as np

from ..tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList"]


class Parameter(Tensor):
    """A trainable tensor: always requires a gradient."""

    __slots__ = ()

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` attributes in
    ``__init__`` and implement ``forward``.  Calling the module invokes
    ``forward``.  ``training`` toggles dropout and sampling behaviour via
    :meth:`train` / :meth:`eval`.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(
        self, prefix: str = ""
    ) -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` over the module tree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of scalar weights (for complexity reporting)."""
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------
    # Modes and gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy all parameters into a flat ``{name: array}`` dict."""
        return {
            name: param.data.copy() for name, param in self.named_parameters()
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters saved by :meth:`state_dict` (strict matching)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            array = np.asarray(state[name])
            if array.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{array.shape} vs {param.shape}"
                )
            param.data[...] = array

    def named_rngs(
        self, prefix: str = ""
    ) -> Iterator[tuple[str, np.random.Generator]]:
        """Yield ``(dotted_name, generator)`` for every RNG in the tree.

        Any ``numpy.random.Generator`` attribute of any submodule counts
        (dropout streams, reparameterization noise, ...).  A generator
        shared between modules appears once per attribute path; all
        paths reference the same object, so restoring each path's state
        is idempotent.
        """
        for name, value in vars(self).items():
            if isinstance(value, np.random.Generator):
                yield (f"{prefix}{name}", value)
        for name, module in self._modules.items():
            yield from module.named_rngs(prefix=f"{prefix}{name}.")

    def rng_state(self) -> dict[str, dict]:
        """JSON-serializable state of every RNG stream in the model.

        Together with :meth:`state_dict` and :meth:`extra_state` this is
        what a full-state training checkpoint needs for a resumed run to
        draw the exact dropout masks / noise an uninterrupted run would.
        """
        return {
            name: rng.bit_generator.state
            for name, rng in self.named_rngs()
        }

    def set_rng_state(self, state: dict[str, dict]) -> None:
        """Restore every RNG stream saved by :meth:`rng_state` (strict)."""
        own = dict(self.named_rngs())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"rng state mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, rng in own.items():
            rng.bit_generator.state = state[name]

    def extra_state(self) -> dict:
        """Non-parameter, non-RNG training state (JSON-serializable).

        Models with internal counters that shape the loss — e.g. the
        β-annealing step of VSAN/SVAE — override this (and
        :meth:`load_extra_state`) so checkpoints can restore them; a
        resume that reset the annealing position would silently change
        the ELBO mid-training.
        """
        return {}

    def load_extra_state(self, state: dict) -> None:
        """Restore :meth:`extra_state`; the base model has none."""
        if state:
            raise ValueError(
                f"{type(self).__name__} has no extra state but received "
                f"keys {sorted(state)}"
            )

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """An indexable container whose entries register as submodules."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        self._items: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
