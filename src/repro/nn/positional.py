"""Positional encodings.

The paper uses a *learnable* positional matrix P (Eq. 4).  The fixed
sinusoidal alternative from the Transformer is provided for the
positional-encoding ablation in ``benchmarks/test_ablation_positions.py``
(SASRec's own paper runs the same comparison).
"""

from __future__ import annotations

import numpy as np

__all__ = ["sinusoidal_positions"]


def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """The Transformer's fixed sin/cos table of shape ``(length, dim)``.

    ``PE[pos, 2i] = sin(pos / 10000^(2i/dim))``,
    ``PE[pos, 2i+1] = cos(pos / 10000^(2i/dim))``.
    """
    if length < 1 or dim < 1:
        raise ValueError("length and dim must be positive")
    positions = np.arange(length, dtype=np.float64)[:, None]
    dimensions = np.arange(dim, dtype=np.float64)[None, :]
    angles = positions / np.power(10000.0, (dimensions // 2) * 2.0 / dim)
    table = np.empty((length, dim))
    table[:, 0::2] = np.sin(angles[:, 0::2])
    table[:, 1::2] = np.cos(angles[:, 1::2])
    return table
