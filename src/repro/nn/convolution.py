"""Caser-style sequence convolutions.

Caser (Tang & Wang, WSDM 2018) treats the last ``L`` item embeddings as an
``L x d`` "image" and applies two kinds of filters:

- *horizontal* filters of shape ``(h, d)`` slide over time and are
  max-pooled over the valid positions, extracting union-level patterns;
- *vertical* filters of shape ``(L, 1)`` take weighted sums over the time
  axis per latent dimension, extracting point-level patterns.

Both are realized as sliding-window gathers plus matmuls, so gradients
come straight from the engine's primitives.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, concatenate, stack
from . import init
from .module import Module, Parameter

__all__ = ["HorizontalConvolution", "VerticalConvolution"]


class HorizontalConvolution(Module):
    """Horizontal filters + ReLU + max-over-time pooling.

    Output is ``(batch, num_filters * len(heights))``.
    """

    def __init__(
        self,
        length: int,
        dim: int,
        heights: tuple[int, ...],
        num_filters: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        if any(h < 1 or h > length for h in heights):
            raise ValueError(
                f"filter heights {heights} must be within [1, {length}]"
            )
        self.length = length
        self.dim = dim
        self.heights = tuple(heights)
        self.num_filters = num_filters
        weights = []
        biases = []
        for height in self.heights:
            weights.append(
                Parameter(init.xavier_uniform(rng, (height * dim, num_filters)))
            )
            biases.append(Parameter(init.zeros((num_filters,))))
        self.weights = weights
        self.biases = biases
        for i, (w, b) in enumerate(zip(weights, biases)):
            setattr(self, f"weight_{i}", w)
            setattr(self, f"bias_{i}", b)

    @property
    def output_dim(self) -> int:
        return self.num_filters * len(self.heights)

    def forward(self, x: Tensor) -> Tensor:
        """``x``: ``(batch, length, dim)`` -> pooled features."""
        batch, length, dim = x.shape
        if length != self.length or dim != self.dim:
            raise ValueError(
                f"expected ({self.length}, {self.dim}) sequence, "
                f"got ({length}, {dim})"
            )
        pooled = []
        for height, weight, bias in zip(
            self.heights, self.weights, self.biases
        ):
            windows = stack(
                [
                    x[:, start:start + height, :].reshape(batch, height * dim)
                    for start in range(length - height + 1)
                ],
                axis=1,
            )  # (batch, length-height+1, height*dim)
            activated = (windows @ weight + bias).relu()
            pooled.append(activated.max(axis=1))
        return concatenate(pooled, axis=-1)


class VerticalConvolution(Module):
    """Vertical filters: per-dimension weighted sums over the time axis.

    Output is ``(batch, num_filters * dim)``.
    """

    def __init__(self, length: int, num_filters: int,
                 rng: np.random.Generator):
        super().__init__()
        self.length = length
        self.num_filters = num_filters
        self.weight = Parameter(
            init.xavier_uniform(rng, (length, num_filters))
        )

    def output_dim(self, dim: int) -> int:
        return self.num_filters * dim

    def forward(self, x: Tensor) -> Tensor:
        """``x``: ``(batch, length, dim)`` -> ``(batch, num_filters*dim)``."""
        batch, length, dim = x.shape
        if length != self.length:
            raise ValueError(f"expected length {self.length}, got {length}")
        # (batch, dim, length) @ (length, filters) -> (batch, dim, filters)
        mixed = x.swapaxes(1, 2) @ self.weight
        return mixed.reshape(batch, dim * self.num_filters)
