"""Layer normalization (Ba et al. 2016), Eq. 7/9/16 of the paper."""

from __future__ import annotations

from ..tensor import Tensor
from . import init
from .module import Module, Parameter

__all__ = ["LayerNorm"]


class LayerNorm(Module):
    """Normalize the last axis to zero mean / unit variance, then affine.

    Statistics are per position and independent of other samples in the
    batch — the property the paper highlights over batch normalization.
    """

    def __init__(self, dim: int, eps: float = 1e-8):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(init.zeros((dim,)) + 1.0)
        self.beta = Parameter(init.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (variance + self.eps).sqrt()
        return normalized * self.gamma + self.beta
