"""Layer normalization (Ba et al. 2016), Eq. 7/9/16 of the paper."""

from __future__ import annotations

from ..tensor import Tensor, fused_layer_norm
from . import init
from .module import Module, Parameter

__all__ = ["LayerNorm"]


class LayerNorm(Module):
    """Normalize the last axis to zero mean / unit variance, then affine.

    Statistics are per position and independent of other samples in the
    batch — the property the paper highlights over batch normalization.

    By default the whole op runs as one fused tape node with the
    closed-form backward (:func:`repro.tensor.fused.fused_layer_norm`);
    ``fused=False`` keeps the composed mean/variance chain as the
    reference path for gradcheck parity.
    """

    def __init__(self, dim: int, eps: float = 1e-8, fused: bool = True):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.fused = fused
        self.gamma = Parameter(init.zeros((dim,)) + 1.0)
        self.beta = Parameter(init.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        if self.fused:
            return fused_layer_norm(x, self.gamma, self.beta, self.eps)
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (variance + self.eps).sqrt()
        return normalized * self.gamma + self.beta
