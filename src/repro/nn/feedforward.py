"""Point-wise feed-forward network (Eq. 8 of the paper).

Two position-independent affine maps with a ReLU between them:
``F = ReLU(E W1 + b1) W2 + b2``.  Because both maps act on the last axis
only, positions never interact — the no-information-leakage property the
paper calls out after Eq. 8.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from .dropout import Dropout
from .linear import Linear
from .module import Module

__all__ = ["PointWiseFeedForward"]


class PointWiseFeedForward(Module):
    """ReLU MLP applied independently at every sequence position."""

    def __init__(
        self,
        dim: int,
        rng: np.random.Generator,
        hidden_dim: int | None = None,
        dropout_rate: float = 0.0,
        dropout_rng: np.random.Generator | None = None,
    ):
        super().__init__()
        hidden_dim = hidden_dim or dim
        self.inner = Linear(dim, hidden_dim, rng)
        self.outer = Linear(hidden_dim, dim, rng)
        self.dropout = Dropout(
            dropout_rate, dropout_rng if dropout_rng is not None else rng
        )

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.dropout(self.inner(x).relu())
        return self.dropout(self.outer(hidden))
