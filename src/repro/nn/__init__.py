"""Neural-network layers built on the :mod:`repro.tensor` engine.

Everything VSAN and the eight baselines need: linear/embedding layers,
layer norm, dropout, causal self-attention blocks (Eq. 5–9), GRUs (for
GRU4Rec / SVAE), and Caser's horizontal/vertical convolutions.
"""

from . import init
from .attention import CausalSelfAttention, causal_mask
from .blocks import SelfAttentionBlock, SelfAttentionStack
from .convolution import HorizontalConvolution, VerticalConvolution
from .dropout import Dropout
from .embedding import Embedding
from .feedforward import PointWiseFeedForward
from .linear import Linear
from .module import Module, ModuleList, Parameter
from .normalization import LayerNorm
from .positional import sinusoidal_positions
from .recurrent import GRU, GRUCell
from .serialization import (
    CheckpointError,
    load_checkpoint,
    load_state,
    save_checkpoint,
)

__all__ = [
    "CausalSelfAttention",
    "CheckpointError",
    "Dropout",
    "Embedding",
    "GRU",
    "GRUCell",
    "HorizontalConvolution",
    "LayerNorm",
    "Linear",
    "Module",
    "ModuleList",
    "Parameter",
    "PointWiseFeedForward",
    "SelfAttentionBlock",
    "SelfAttentionStack",
    "VerticalConvolution",
    "causal_mask",
    "init",
    "load_checkpoint",
    "load_state",
    "save_checkpoint",
    "sinusoidal_positions",
]
