"""Dropout layer (module wrapper over the functional form)."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, dropout
from .module import Module

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout driven by an explicit generator.

    The generator is owned by the layer so a seeded model produces
    reproducible mask sequences; evaluation mode is the identity.
    """

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return dropout(x, self.rate, self._rng, training=self.training)
