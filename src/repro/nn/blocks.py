"""The paper's self-attention block (Eq. 5–9): attention, residual +
layer norm, point-wise feed-forward, residual + layer norm.

Used for both the Inference Self-attention Layer (input = item+position
embeddings) and the Generative Self-attention Layer (input = latent z);
stacking ``h`` blocks realizes Eq. 11 / Eq. 17.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from .attention import CausalSelfAttention
from .dropout import Dropout
from .feedforward import PointWiseFeedForward
from .module import Module, ModuleList
from .normalization import LayerNorm

__all__ = ["SelfAttentionBlock", "SelfAttentionStack"]


class SelfAttentionBlock(Module):
    """One SAN block: ``G = LN(FFN(LN(Attn(x) + x)) + LN(Attn(x) + x))``.

    ``use_feedforward=False`` drops the FFN sub-layer entirely (the block
    output becomes ``E = LN(Attn(x) + x)``), which implements the paper's
    VSAN-infer-feed / VSAN-gene-feed / VSAN-all-feed ablations (Table VI).

    ``norm_first=True`` switches to the pre-norm arrangement
    (``x + Attn(LN(x))``), the standard remedy for the degradation the
    paper observes when stacking 3+ blocks (Table IV); the paper's own
    equations are post-norm, which remains the default.
    """

    def __init__(
        self,
        dim: int,
        rng: np.random.Generator,
        num_heads: int = 1,
        dropout_rate: float = 0.0,
        use_feedforward: bool = True,
        dropout_rng: np.random.Generator | None = None,
        norm_first: bool = False,
        fused: bool = True,
    ):
        super().__init__()
        dropout_rng = dropout_rng if dropout_rng is not None else rng
        self.attention = CausalSelfAttention(
            dim, rng, num_heads=num_heads, fused=fused
        )
        self.attention_dropout = Dropout(dropout_rate, dropout_rng)
        self.norm_attention = LayerNorm(dim, fused=fused)
        self.use_feedforward = use_feedforward
        self.norm_first = norm_first
        if use_feedforward:
            self.feedforward = PointWiseFeedForward(
                dim,
                rng,
                dropout_rate=dropout_rate,
                dropout_rng=dropout_rng,
            )
            self.norm_feedforward = LayerNorm(dim, fused=fused)

    def forward(
        self,
        x: Tensor,
        key_padding_mask: np.ndarray | None = None,
        timeline_mask: np.ndarray | None = None,
    ) -> Tensor:
        """Apply the block.

        Args:
            x: ``(batch, length, dim)`` input.
            key_padding_mask: True at padded key positions (see
                :class:`CausalSelfAttention`).
            timeline_mask: optional ``(batch, length)`` {0,1} array; the
                block output is multiplied by it so padded positions stay
                exactly zero between blocks (as in SASRec).
        """
        if self.norm_first:
            attended = self.attention_dropout(
                self.attention(
                    self.norm_attention(x),
                    key_padding_mask=key_padding_mask,
                )
            )
            normed = attended + x
            if self.use_feedforward:
                out = normed + self.feedforward(
                    self.norm_feedforward(normed)
                )
            else:
                out = normed
        else:
            attended = self.attention_dropout(
                self.attention(x, key_padding_mask=key_padding_mask)
            )
            normed = self.norm_attention(attended + x)
            if self.use_feedforward:
                out = self.norm_feedforward(
                    self.feedforward(normed) + normed
                )
            else:
                out = normed
        if timeline_mask is not None:
            out = out * Tensor(
                np.asarray(timeline_mask, dtype=out.dtype)[..., None]
            )
        return out


class SelfAttentionStack(Module):
    """``h`` stacked blocks (Eq. 11 / Eq. 17); ``h = 0`` is the identity."""

    def __init__(
        self,
        dim: int,
        num_blocks: int,
        rng: np.random.Generator,
        num_heads: int = 1,
        dropout_rate: float = 0.0,
        use_feedforward: bool = True,
        dropout_rng: np.random.Generator | None = None,
        norm_first: bool = False,
        fused: bool = True,
    ):
        super().__init__()
        self.blocks = ModuleList(
            [
                SelfAttentionBlock(
                    dim,
                    rng,
                    num_heads=num_heads,
                    dropout_rate=dropout_rate,
                    use_feedforward=use_feedforward,
                    dropout_rng=dropout_rng,
                    norm_first=norm_first,
                    fused=fused,
                )
                for _ in range(num_blocks)
            ]
        )

    def __len__(self) -> int:
        return len(self.blocks)

    def forward(
        self,
        x: Tensor,
        key_padding_mask: np.ndarray | None = None,
        timeline_mask: np.ndarray | None = None,
    ) -> Tensor:
        out = x
        for block in self.blocks:
            out = block(
                out,
                key_padding_mask=key_padding_mask,
                timeline_mask=timeline_mask,
            )
        return out
